"""End-to-end pipeline tests: file -> graph -> index -> persist -> query."""

import numpy as np

from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.graphs.generators import chung_lu
from repro.graphs.io import read_edge_list, write_edge_list
from repro.metrics.accuracy import avg_diff
from repro.metrics.ranking import kendall_tau


class TestFullPipeline:
    def test_disk_roundtrip_pipeline(self, tmp_path):
        """Generate -> write -> read -> index -> save -> load -> query."""
        graph = chung_lu(300, 1500, seed=51)
        edge_path = tmp_path / "graph.txt"
        write_edge_list(graph, edge_path)
        loaded, _ = read_edge_list(edge_path, relabel=False)
        assert loaded == graph

        index = CSRPlusIndex(loaded, rank=10).prepare()
        index_path = tmp_path / "index.npz"
        index.save(index_path)
        restored = CSRPlusIndex.load(index_path, loaded)

        queries = sample_queries(loaded, 25, seed=7)
        np.testing.assert_array_equal(index.query(queries), restored.query(queries))

    def test_offline_cost_amortised_over_queries(self):
        """One prepared index answers many query batches identically to
        freshly-built indexes — the paper's preprocessing pitch."""
        graph = chung_lu(400, 2000, seed=52)
        shared = CSRPlusIndex(graph, rank=8).prepare()
        for seed in range(3):
            queries = sample_queries(graph, 30, seed=seed)
            fresh = CSRPlusIndex(graph, rank=8).query(queries)
            np.testing.assert_array_equal(shared.query(queries), fresh)

    def test_low_rank_preserves_top_rankings(self):
        """Low rank approximates values but keeps the head of the
        ranking useful: the exact top-10 mostly appears in the
        approximate top-20.  (A tau over *all* nodes would mostly
        measure noise among the near-zero tail.)"""
        from repro.baselines.exact import ExactCoSimRank
        from repro.metrics.ranking import precision_at_k

        graph = chung_lu(200, 1200, seed=53)
        query = 11
        exact_scores = ExactCoSimRank(graph).single_source(query)
        exact_top = np.argsort(exact_scores)[::-1][:10]
        approx_top = CSRPlusIndex(graph, rank=60).prepare().top_k(
            query, 20, exclude_self=False
        )
        assert precision_at_k(exact_top.tolist(), approx_top.tolist(), 10) >= 0.6

    def test_avgdiff_improves_with_rank_end_to_end(self):
        from repro.baselines.exact import ExactCoSimRank

        graph = chung_lu(250, 1300, seed=54)
        queries = sample_queries(graph, 40, seed=9)
        exact = ExactCoSimRank(graph).query(queries)
        diffs = [
            avg_diff(CSRPlusIndex(graph, rank=rank).query(queries), exact)
            for rank in (5, 25, 100)
        ]
        assert diffs[2] < diffs[0]
