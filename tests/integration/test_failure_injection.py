"""Failure-injection tests: corrupted inputs, hostile files, edge cases."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import (
    GraphFormatError,
    InvalidParameterError,
    MemoryBudgetExceeded,
    ReproError,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu
from repro.graphs.io import read_edge_list


class TestCorruptedIndexFiles:
    def test_truncated_npz(self, tmp_path, small_er):
        index = CSRPlusIndex(small_er, rank=4).prepare()
        path = tmp_path / "index.npz"
        index.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            CSRPlusIndex.load(path, small_er)

    def test_not_an_npz(self, tmp_path, small_er):
        path = tmp_path / "index.npz"
        path.write_text("definitely not a zip archive")
        with pytest.raises(Exception):
            CSRPlusIndex.load(path, small_er)

    def test_missing_keys(self, tmp_path, small_er):
        path = tmp_path / "index.npz"
        np.savez(path, u=np.eye(3))
        with pytest.raises(Exception):
            CSRPlusIndex.load(path, small_er)


class TestHostileEdgeLists:
    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_bytes(bytes(range(256)))
        with pytest.raises((GraphFormatError, UnicodeDecodeError)):
            read_edge_list(path)

    def test_header_only(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing but comments\n# more\n")
        graph, _ = read_edge_list(path)
        assert graph.num_nodes == 0

    def test_whitespace_soup(self):
        from repro.graphs.io import parse_edge_list

        graph, _ = parse_edge_list("  \t \n   0 \t 1  \n\t\n")
        assert graph.num_edges == 1


class TestBudgetExhaustionMidway:
    def test_engine_usable_state_after_memory_crash(self):
        """A crashed engine reports cleanly and can be retried bigger."""
        graph = chung_lu(400, 2000, seed=93)
        from repro.baselines.ni import CSRNIEngine

        engine = CSRNIEngine(graph, rank=8, memory_budget_bytes=1_000_000)
        with pytest.raises(MemoryBudgetExceeded) as err:
            engine.prepare()
        # the error carries actionable numbers
        assert err.value.requested_bytes > err.value.budget_bytes
        # a fresh engine with a real budget succeeds on the same graph
        retry = CSRNIEngine(graph, rank=8, memory_budget_bytes=None)
        assert retry.query([0]).shape == (400, 1)

    def test_csr_plus_partial_prepare_not_marked_prepared(self):
        graph = chung_lu(5000, 25000, seed=94)
        index = CSRPlusIndex(graph, rank=5, memory_budget_bytes=10_000)
        with pytest.raises(MemoryBudgetExceeded):
            index.prepare()
        assert not index.is_prepared


class TestDegenerateGraphs:
    def test_all_dangling(self):
        """A graph with edges but every target unique: PPR dies fast."""
        graph = DiGraph(6, [(0, 1), (2, 3), (4, 5)])
        index = CSRPlusIndex(graph, rank=3).prepare()
        block = index.query([1, 3])
        assert np.isfinite(block).all()

    def test_star_hub_query(self):
        from repro.graphs.generators import star

        graph = star(30, inward=True)
        index = CSRPlusIndex(graph, rank=5).prepare()
        scores = index.single_source(0)
        assert scores[0] >= 1.0

    def test_nan_free_on_self_loop_heavy_graph(self):
        graph = DiGraph(5, [(i, i) for i in range(5)] + [(0, 1)])
        index = CSRPlusIndex(graph, rank=5, epsilon=1e-10).prepare()
        assert np.isfinite(index.all_pairs()).all()

    def test_rank_one_graph(self):
        graph = DiGraph(10, [(i, 9) for i in range(9)])
        index = CSRPlusIndex(graph, rank=1).prepare()
        assert np.isfinite(index.query([9])).all()
