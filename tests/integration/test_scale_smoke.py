"""Large-graph smoke tests: the ARPACK/sparse code path at real size.

The unit tests mostly run small graphs through the dense SVD fallback;
these tests push a six-figure-node stand-in through the sparse path the
benchmarks use, asserting the linear-cost behaviour end to end.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.datasets.queries import sample_queries
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def big_index():
    graph = load_dataset("TW", "small")  # 16k nodes, 260k edges, R-MAT
    return graph, CSRPlusIndex(graph, rank=5).prepare()


class TestSparsePathAtScale:
    def test_prepare_memory_stays_linear(self, big_index):
        graph, index = big_index
        # O(rn + m) accounted bytes; far under anything quadratic
        assert index.memory.peak_bytes < 80e6
        assert index.memory.peak_bytes > graph.num_nodes * 5 * 8

    def test_multi_source_query(self, big_index):
        graph, index = big_index
        queries = sample_queries(graph, 200, seed=7)
        block = index.query(queries)
        assert block.shape == (graph.num_nodes, 200)
        assert np.isfinite(block).all()
        # diagonal entries carry their +1
        assert all(block[q, j] >= 0.99 for j, q in enumerate(queries[:10]))

    def test_query_time_far_below_prepare(self, big_index):
        _, index = big_index
        index.query(sample_queries(index.graph, 100, seed=8))
        assert index.last_query_seconds < max(index.prepare_seconds, 0.05)

    def test_consistency_with_rls_on_sample(self, big_index):
        """Spot-check the sparse-path numbers against an independent
        truncated-series engine on a few queries.

        The assertion targets AvgDiff — the paper's §4.2.3 metric.
        (Pointwise head entries on a heavy-tailed graph come from
        *local* structures, e.g. leaf pairs under small hubs, that a
        global low-rank SVD does not resolve even at r in the hundreds;
        AvgDiff stays small because such entries are sparse.  See
        EXPERIMENTS.md "Summary of deviations".)
        """
        from repro.baselines.rls import CSRRLSEngine
        from repro.metrics.accuracy import avg_diff

        graph, _ = big_index
        index = CSRPlusIndex(graph, rank=64).prepare()
        queries = [3, 1000, 9999]
        rls = CSRRLSEngine(graph, iterations=40).query(queries)
        approx = index.query(queries)
        assert avg_diff(approx, rls) < 1e-3
        # diagonal +1 terms always survive the approximation
        for j, q in enumerate(queries):
            assert approx[q, j] > 0.9
