"""The fast example scripts run end to end (smoke tests).

The heavyweight demos (scalability comparison, link prediction at full
size) are exercised indirectly by the benchmark suite; here we execute
the quick ones exactly as a user would.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "synonym_expansion.py",
    "weighted_graphs.py",
    "wikipedian_categorisation.py",
    "dynamic_updates.py",
    "recommendations.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example missing: {path}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_output_content(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "prepared in" in out
    assert "single pair" in out


def test_dynamic_updates_serves_during_sustained_mutation(capsys):
    """The served live-graph scenario: a nonzero ok-rate while edge
    batches publish version swaps mid-run, cache warmth across a
    byte-no-op swap, and post-swap answers matching a fresh build."""
    import re

    runpy.run_path(str(EXAMPLES_DIR / "dynamic_updates.py"), run_name="__main__")
    out = capsys.readouterr().out
    ok_rate = re.search(r"ok rate (\d+(?:\.\d+)?)%", out)
    assert ok_rate is not None and float(ok_rate.group(1)) > 0
    mutations = re.search(r"mutations: (\d+) live edge batches", out)
    assert mutations is not None and int(mutations.group(1)) > 0
    assert "version swaps completed with zero downtime" in out
    assert "replayed exact bytes: True" in out
    assert "match a fresh index" in out
