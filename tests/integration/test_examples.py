"""The fast example scripts run end to end (smoke tests).

The heavyweight demos (scalability comparison, link prediction at full
size) are exercised indirectly by the benchmark suite; here we execute
the quick ones exactly as a user would.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "synonym_expansion.py",
    "weighted_graphs.py",
    "wikipedian_categorisation.py",
    "dynamic_updates.py",
    "recommendations.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example missing: {path}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_output_content(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "prepared in" in out
    assert "single pair" in out


def test_dynamic_updates_keeps_cache_warm(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "dynamic_updates.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "stay warm" in out
    assert "match a fresh engine" in out
