"""Exhaustive cross-engine agreement grid.

Every (engine, damping, graph family) combination is checked against
the exact solver at the accuracy the engine claims.  This is the
broadest single correctness net in the suite: a regression anywhere in
the transition builder, SVD, solvers, or an engine's bookkeeping makes
some cell disagree.
"""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.registry import make_engine
from repro.core.index import CSRPlusIndex
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import (
    chung_lu,
    erdos_renyi,
    preferential_attachment,
    random_dag,
    ring,
    star,
)

GRAPHS = {
    "er": lambda: erdos_renyi(35, 150, seed=101),
    "powerlaw": lambda: chung_lu(40, 180, seed=102),
    "social": lambda: preferential_attachment(30, 3, seed=103),
    "dag": lambda: random_dag(30, 90, seed=104),
    "ring": lambda: ring(20),
    "star": lambda: star(15, inward=True),
}

DAMPINGS = (0.3, 0.6, 0.85)


@pytest.mark.parametrize("damping", DAMPINGS)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_full_rank_csr_plus_cell(graph_name, damping):
    graph = GRAPHS[graph_name]()
    exact = ExactCoSimRank(graph, damping=damping, epsilon=1e-13).query([0, 3])
    approx = CSRPlusIndex(
        graph, rank=graph.num_nodes, damping=damping, epsilon=1e-13
    ).query([0, 3])
    np.testing.assert_allclose(approx, exact, atol=1e-7)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize(
    "engine_name", ["CSR-IT", "CSR-RLS", "CoSimMate", "F-CoSim"]
)
def test_exact_family_cell(graph_name, engine_name):
    graph = GRAPHS[graph_name]()
    exact = ExactCoSimRank(graph, epsilon=1e-13).query([1, 2])
    if engine_name in ("CSR-IT", "CSR-RLS"):
        engine = make_engine(engine_name, graph, rank=80)  # K=80 iterations
    else:
        engine = make_engine(engine_name, graph)
    block = engine.query([1, 2])
    np.testing.assert_allclose(block, exact, atol=1e-4, err_msg=graph_name)


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_lossless_pair_cell(graph_name):
    """CSR+ == CSR-NI at a shared low rank, on every graph family."""
    from repro.graphs.transition import transition_matrix

    graph = GRAPHS[graph_name]()
    # CSR-NI inverts Sigma kron Sigma, so the shared rank must not
    # exceed the numerical rank of Q (a star's Q has rank 1).
    sigma = np.linalg.svd(transition_matrix(graph).toarray(), compute_uv=False)
    rank = min(6, int(np.sum(sigma > 1e-10)))
    plus = CSRPlusIndex(graph, rank=rank, epsilon=1e-13).query([0])
    ni = make_engine("CSR-NI", graph, rank=rank).query([0])
    np.testing.assert_allclose(plus, ni, atol=1e-9, err_msg=graph_name)
