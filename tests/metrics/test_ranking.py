"""Unit tests for ranking metrics."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.ranking import kendall_tau, ndcg_at_k, precision_at_k, rank_of


class TestPrecisionAtK:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 9, 2], [1, 2], 3) == pytest.approx(2 / 3)

    def test_truncates_predictions(self):
        assert precision_at_k([1, 9, 9, 9], [1], 1) == 1.0

    def test_short_prediction_list(self):
        assert precision_at_k([1], [1, 2], 5) == 1.0

    def test_empty_predictions(self):
        assert precision_at_k([], [1], 3) == 0.0

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            precision_at_k([1], [1], 0)


class TestNDCG:
    def test_perfect_is_one(self):
        assert ndcg_at_k([1, 2, 3], [1, 2, 3], 3) == pytest.approx(1.0)

    def test_hit_later_is_worse(self):
        early = ndcg_at_k([1, 9, 8], [1], 3)
        late = ndcg_at_k([9, 8, 1], [1], 3)
        assert early > late > 0

    def test_no_relevant(self):
        assert ndcg_at_k([1, 2], [], 2) == 0.0

    def test_no_hits(self):
        assert ndcg_at_k([5, 6], [1], 2) == 0.0


class TestKendallTau:
    def test_identical_order(self):
        assert kendall_tau(np.array([1.0, 2, 3]), np.array([10.0, 20, 30])) == 1.0

    def test_reversed_order(self):
        assert kendall_tau(np.array([1.0, 2, 3]), np.array([3.0, 2, 1])) == -1.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            kendall_tau(np.zeros(3), np.zeros(4))

    def test_too_short(self):
        with pytest.raises(InvalidParameterError):
            kendall_tau(np.zeros(1), np.zeros(1))


class TestRankOf:
    def test_basic(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of(scores, 1) == 0
        assert rank_of(scores, 2) == 1
        assert rank_of(scores, 0) == 2

    def test_tie_broken_by_id(self):
        scores = np.array([0.5, 0.5])
        assert rank_of(scores, 0) == 0
        assert rank_of(scores, 1) == 1

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            rank_of(np.zeros(3), 5)
