"""Unit tests for ranking metrics."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.ranking import kendall_tau, ndcg_at_k, precision_at_k, rank_of


class TestPrecisionAtK:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 9, 2], [1, 2], 3) == pytest.approx(2 / 3)

    def test_truncates_predictions(self):
        assert precision_at_k([1, 9, 9, 9], [1], 1) == 1.0

    def test_short_prediction_list(self):
        # regression: a 1-item prediction list fills 1 of 5 slots — the
        # denominator is k, so truncated rankers cannot inflate their
        # precision to 1.0
        assert precision_at_k([1], [1, 2], 5) == pytest.approx(1 / 5)

    def test_short_list_never_beats_full_list(self):
        short = precision_at_k([1], [1, 2], 5)
        full = precision_at_k([1, 2, 7, 8, 9], [1, 2], 5)
        assert short < full == pytest.approx(2 / 5)

    def test_empty_predictions(self):
        assert precision_at_k([], [1], 3) == 0.0

    def test_empty_relevant(self):
        assert precision_at_k([1, 2, 3], [], 3) == 0.0

    def test_k_larger_than_universe(self):
        # all 3 relevant items found, but 7 of the 10 slots stay empty
        assert precision_at_k([1, 2, 3], [1, 2, 3], 10) == pytest.approx(0.3)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            precision_at_k([1], [1], 0)


class TestNDCG:
    def test_perfect_is_one(self):
        assert ndcg_at_k([1, 2, 3], [1, 2, 3], 3) == pytest.approx(1.0)

    def test_hit_later_is_worse(self):
        early = ndcg_at_k([1, 9, 8], [1], 3)
        late = ndcg_at_k([9, 8, 1], [1], 3)
        assert early > late > 0

    def test_no_relevant(self):
        assert ndcg_at_k([1, 2], [], 2) == 0.0

    def test_no_hits(self):
        assert ndcg_at_k([5, 6], [1], 2) == 0.0

    def test_empty_predictions(self):
        assert ndcg_at_k([], [1, 2], 3) == 0.0

    def test_k_larger_than_predictions(self):
        # ideal DCG is capped at the number of slots actually rankable
        assert ndcg_at_k([1, 2], [1, 2], 10) == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            ndcg_at_k([1], [1], 0)


class TestKendallTau:
    def test_identical_order(self):
        assert kendall_tau(np.array([1.0, 2, 3]), np.array([10.0, 20, 30])) == 1.0

    def test_reversed_order(self):
        assert kendall_tau(np.array([1.0, 2, 3]), np.array([3.0, 2, 1])) == -1.0

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            kendall_tau(np.zeros(3), np.zeros(4))

    def test_too_short(self):
        with pytest.raises(InvalidParameterError):
            kendall_tau(np.zeros(1), np.zeros(1))

    def test_all_ties_is_zero_not_nan(self):
        # kendalltau returns nan when one side is constant (zero
        # variance); the wrapper reports 0.0 — "no ordering signal"
        assert kendall_tau(np.ones(4), np.array([1.0, 2, 3, 4])) == 0.0
        assert kendall_tau(np.ones(4), np.ones(4)) == 0.0


class TestRankOf:
    def test_basic(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert rank_of(scores, 1) == 0
        assert rank_of(scores, 2) == 1
        assert rank_of(scores, 0) == 2

    def test_tie_broken_by_id(self):
        scores = np.array([0.5, 0.5])
        assert rank_of(scores, 0) == 0
        assert rank_of(scores, 1) == 1

    def test_all_ties_rank_by_id(self):
        scores = np.zeros(4)
        assert [rank_of(scores, node) for node in range(4)] == [0, 1, 2, 3]

    def test_matches_engine_tie_order(self):
        # same (descending score, ascending id) order as
        # SimilarityEngine.top_k and the top-k kernels
        scores = np.array([0.3, 0.5, 0.5, 0.1])
        assert rank_of(scores, 1) == 0
        assert rank_of(scores, 2) == 1
        assert rank_of(scores, 0) == 2
        assert rank_of(scores, 3) == 3

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            rank_of(np.zeros(3), 5)
