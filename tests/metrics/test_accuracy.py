"""Unit tests for the accuracy metrics (AvgDiff and friends)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.accuracy import avg_diff, max_diff, rmse


class TestAvgDiff:
    def test_definition(self):
        """AvgDiff = mean |S_hat - S| over the n x |Q| block (§4.2.3)."""
        estimate = np.array([[1.0, 2.0], [3.0, 4.0]])
        reference = np.array([[1.5, 2.0], [3.0, 3.0]])
        assert avg_diff(estimate, reference) == pytest.approx(
            (0.5 + 0.0 + 0.0 + 1.0) / 4
        )

    def test_zero_for_identical(self, rng):
        block = rng.standard_normal((10, 4))
        assert avg_diff(block, block) == 0.0

    def test_symmetry(self, rng):
        a = rng.standard_normal((5, 3))
        b = rng.standard_normal((5, 3))
        assert avg_diff(a, b) == avg_diff(b, a)

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            avg_diff(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            avg_diff(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_vector_inputs(self):
        assert avg_diff(np.array([1.0, 2.0]), np.array([2.0, 2.0])) == 0.5


class TestOtherMetrics:
    def test_max_diff(self):
        a = np.array([[0.0, 5.0]])
        b = np.array([[1.0, 2.0]])
        assert max_diff(a, b) == 3.0

    def test_rmse(self):
        a = np.array([0.0, 0.0])
        b = np.array([3.0, 4.0])
        assert rmse(a, b) == pytest.approx(np.sqrt(12.5))

    def test_ordering(self, rng):
        """max >= rmse >= avg for any block."""
        a = rng.standard_normal((20, 5))
        b = rng.standard_normal((20, 5))
        assert max_diff(a, b) >= rmse(a, b) >= avg_diff(a, b)
