"""Property: every top-k path returns the full-sort engine's ranking.

``SimilarityEngine.top_k`` scores all ``n`` nodes and lexsorts on
``(-score, id)``; the blockwise kernel visits norm-ordered blocks and
prunes.  Because top-k selection under a total order is associative
over partitions, the two must agree *exactly* — same nodes, same
scores, same tie order.  Hypothesis searches for a counter-example
across:

* arbitrary small digraphs (plus hub-skewed stars — heavy ties and
  extreme norm skew) and seed batches with duplicates;
* shard counts ``{1, 2, 7, n}`` and the monolithic layout;
* both storage dtypes (float64 / float32);
* ``k`` spanning ``{1, 5, n-1, n}`` (clamping included);
* ``exclude_self`` on and off;
* cold and warm top-k cache states when served through
  :class:`~repro.serving.CoSimRankService.serve_topk`;
* batched mode, where node sets may legitimately differ on near-ties
  but every returned score must sit within
  :func:`~repro.core.index.batched_query_atol` of the exact column.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.core.topk import top_k_blockwise
from repro.graphs.digraph import DiGraph
from repro.serving import CoSimRankService
from repro.sharding import ShardedIndex, shard_index

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SHARD_COUNTS = (1, 2, 7, None)  # None stands for n (one row per shard)


@st.composite
def topk_case(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    if draw(st.booleans()):
        # hub-skewed: a star into node 0 (all norms concentrate on the
        # hub, everyone else ties — the tie-order torture case)
        edges = [(s, 0) for s in range(1, n)]
        extra = [(s, t) for s in range(n) for t in range(n) if s != t]
        edges += draw(
            st.lists(st.sampled_from(extra), min_size=0, max_size=n, unique=True)
        )
        edges = sorted(set(edges))
    else:
        possible = [(s, t) for s in range(n) for t in range(n) if s != t]
        edges = draw(
            st.lists(
                st.sampled_from(possible), min_size=1, max_size=3 * n, unique=True
            )
        )
    seed = st.integers(min_value=0, max_value=n - 1)
    seeds = draw(st.lists(seed, min_size=1, max_size=2 * n))  # dups allowed
    rank = draw(st.integers(min_value=1, max_value=min(4, n)))
    dtype = draw(st.sampled_from(["float64", "float32"]))
    num_shards = draw(st.sampled_from(SHARD_COUNTS))
    k = draw(st.sampled_from(sorted({1, min(5, n), n - 1, n})))
    exclude_self = draw(st.booleans())
    return DiGraph(n, edges), seeds, rank, dtype, num_shards or n, k, exclude_self


def _reference(index, seeds, k, exclude_self):
    """Full-sort rankings and their exact column scores, per seed."""
    expected = []
    for seed in seeds:
        nodes = index.top_k(int(seed), k, exclude_self=exclude_self)
        column = index.single_source(int(seed))
        expected.append((nodes, column[nodes]))
    return expected


def _assert_identical(results, expected):
    for result, (nodes, scores) in zip(results, expected):
        np.testing.assert_array_equal(result.nodes, nodes)
        np.testing.assert_array_equal(
            np.asarray(result.scores, dtype=np.float64),
            scores.astype(np.float64),
        )


@settings(**SETTINGS)
@given(case=topk_case())
def test_blockwise_matches_full_sort(case):
    """Contract 1: the monolithic blockwise kernel is bit-identical."""
    graph, seeds, rank, dtype, _, k, exclude_self = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    expected = _reference(index, seeds, k, exclude_self)
    for block_rows in (1, 3, graph.num_nodes):
        results = top_k_blockwise(
            index, seeds, k,
            exclude_self=exclude_self, block_rows=block_rows, mode="exact",
        )
        _assert_identical(results, expected)


@settings(**SETTINGS)
@given(case=topk_case())
def test_sharded_blockwise_matches_full_sort(case, tmp_path_factory):
    """Contract 2: shard-per-block evaluation is bit-identical too."""
    graph, seeds, rank, dtype, num_shards, k, exclude_self = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    expected = _reference(index, seeds, k, exclude_self)
    store = shard_index(
        index, tmp_path_factory.mktemp("store"), num_shards=num_shards
    )
    with ShardedIndex(store, max_workers=1) as sharded:
        results = top_k_blockwise(
            sharded, seeds, k, exclude_self=exclude_self, mode="exact"
        )
    _assert_identical(results, expected)


@settings(**SETTINGS)
@given(case=topk_case())
def test_served_topk_matches_full_sort(case, tmp_path_factory):
    """Contract 3: serve_topk is bit-identical, cold cache and warm."""
    graph, seeds, rank, dtype, num_shards, k, exclude_self = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    expected = _reference(index, seeds, k, exclude_self)
    store = shard_index(
        index, tmp_path_factory.mktemp("store"), num_shards=num_shards
    )
    with ShardedIndex(store, max_workers=1) as sharded:
        for backend in (index, sharded):
            with CoSimRankService(backend, max_workers=1) as service:
                cold = service.serve_topk(
                    seeds, k, exclude_self=exclude_self
                )
                _assert_identical(cold, expected)
                warm = service.serve_topk(
                    seeds, k, exclude_self=exclude_self
                )
                _assert_identical(warm, expected)
                # a shallower request must be the deeper prefix
                if k > 1:
                    shallow = service.serve_topk(
                        seeds, k - 1, exclude_self=exclude_self
                    )
                    for deep, narrow in zip(cold, shallow):
                        np.testing.assert_array_equal(
                            narrow.nodes, deep.nodes[: k - 1]
                        )


@settings(**SETTINGS)
@given(case=topk_case())
def test_batched_mode_within_tolerance(case):
    """Contract 4: batched top-k scores obey the batched_query_atol bound."""
    graph, seeds, rank, dtype, _, k, exclude_self = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    atol = batched_query_atol(rank, dtype)
    results = top_k_blockwise(
        index, seeds, k, exclude_self=exclude_self, block_rows=3, mode="batched"
    )
    for seed, result in zip(seeds, results):
        column = index.single_source(int(seed))
        np.testing.assert_allclose(
            np.asarray(result.scores, dtype=np.float64),
            column[result.nodes],
            rtol=0.0,
            atol=atol,
        )
        # every returned node must genuinely belong near the top:
        # no score may sit below the exact k-th floor by more than
        # the documented tolerance
        order = np.lexsort((np.arange(column.size), -column))
        if exclude_self:
            order = order[order != int(seed)]
        floor = column[order[: min(k, order.size)]][-1]
        assert np.all(
            np.asarray(result.scores, dtype=np.float64) >= floor - atol
        )
