"""Property: every index lifecycle path preserves ``prepare()``'s contract.

``save→load``, ``rebuild_for_damping``, and ``truncate_to_rank`` all
produce a "prepared" :class:`~repro.core.index.CSRPlusIndex` without
running ``prepare()`` — historically the paths where dtype policy and
memory-ledger discipline drifted.  For both ``float64`` and ``float32``
configs, each derived index must agree with a freshly prepared one on:

* **dtype** — retained factors (and query output) in the config dtype;
* **layout** — ``query_columns`` output stays Fortran-contiguous;
* **values** — queries match the fresh index within a dtype-scaled
  tolerance (float64 paths reuse the identical SVD, so they agree to
  ~1e-12; float32 paths recompute Z from the degraded stored U, so they
  agree to ~float32 resolution);
* **ledger** — the memory meter charges the same labels as
  ``prepare()`` does for the retained factors.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu

DTYPES = ("float64", "float32")

#: Value-agreement tolerance per storage dtype (see module docstring).
ATOL = {"float64": 1e-10, "float32": 1e-5}

#: Ledger labels prepare() leaves live for the retained factors.
FACTOR_LABELS = (
    "precompute/U",
    "precompute/Z",
    "precompute/Sigma",
    "precompute/P",
    "precompute/H",
)


@pytest.fixture(scope="module")
def graph():
    return chung_lu(180, 900, seed=41)


def _fresh(graph, **overrides):
    return CSRPlusIndex(graph, **overrides).prepare()


def _assert_same_contract(derived, fresh, dtype, atol=None):
    """dtype + layout + values + ledger agreement (module docstring)."""
    expected = np.dtype(dtype)
    for name, factor in zip("UZ", (derived.factors[0], derived.factors[3])):
        assert factor.dtype == expected, f"{name} is {factor.dtype}"
    seeds = [0, 7, derived.num_nodes - 1]
    derived_block = derived.query_columns(seeds)
    fresh_block = fresh.query_columns(seeds)
    assert derived_block.dtype == expected
    assert derived_block.flags.f_contiguous
    np.testing.assert_allclose(
        derived_block.astype(np.float64),
        fresh_block.astype(np.float64),
        rtol=0.0,
        atol=ATOL[dtype] if atol is None else atol,
    )
    derived_live = derived.memory.live_breakdown()
    fresh_live = fresh.memory.live_breakdown()
    for label in FACTOR_LABELS:
        assert derived_live.get(label) == fresh_live.get(label), label


class TestSaveLoad:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_loaded_matches_fresh(self, graph, tmp_path, dtype):
        fresh = _fresh(graph, rank=10, dtype=dtype)
        path = tmp_path / "index.npz"
        fresh.save(path)
        loaded = CSRPlusIndex.load(path, graph)
        _assert_same_contract(loaded, fresh, dtype)
        # loaded factors are the saved bytes, not a recomputation
        assert np.array_equal(loaded.factors[3], fresh.factors[3])

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_load_charges_h_and_restores_iterations(
        self, graph, tmp_path, dtype
    ):
        fresh = _fresh(graph, rank=10, dtype=dtype)
        path = tmp_path / "index.npz"
        fresh.save(path)
        loaded = CSRPlusIndex.load(path, graph)
        live = loaded.memory.live_breakdown()
        assert live["precompute/H"] == fresh.factors[2].shape[0] ** 2 * 8
        assert loaded.stein_iterations == fresh.stein_iterations > 0


class TestRebuildForDamping:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_rebuilt_matches_fresh(self, graph, dtype):
        base = _fresh(graph, rank=10, damping=0.6, dtype=dtype)
        rebuilt = base.rebuild_for_damping(0.8)
        fresh = _fresh(graph, rank=10, damping=0.8, dtype=dtype)
        _assert_same_contract(rebuilt, fresh, dtype)
        assert rebuilt.stein_iterations == fresh.stein_iterations


class TestTruncateToRank:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_truncated_matches_fresh(self, graph, dtype):
        base = _fresh(graph, rank=20, dtype=dtype)
        truncated = base.truncate_to_rank(6)
        fresh = _fresh(graph, rank=6, dtype=dtype)
        # the fresh rank-6 ARPACK run and the sliced rank-20 one agree
        # only to SVD tolerance, not bitwise
        _assert_same_contract(truncated, fresh, dtype, atol=1e-5)
        assert truncated.stein_iterations == fresh.stein_iterations


class TestChainedLifecycles:
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_save_load_then_rebuild_then_truncate(self, graph, tmp_path, dtype):
        """The paths compose: each hop preserves the full contract."""
        base = _fresh(graph, rank=12, damping=0.6, dtype=dtype)
        path = tmp_path / "chain.npz"
        base.save(path)
        chained = (
            CSRPlusIndex.load(path, graph)
            .rebuild_for_damping(0.5)
            .truncate_to_rank(5)
        )
        fresh = _fresh(graph, rank=5, damping=0.5, dtype=dtype)
        _assert_same_contract(chained, fresh, dtype, atol=1e-5)
