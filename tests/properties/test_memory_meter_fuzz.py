"""Property-based fuzzing of the memory meter's bookkeeping invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import MemoryMeter
from repro.errors import MemoryBudgetExceeded

SETTINGS = dict(max_examples=80, deadline=None)

actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("charge"),
            st.sampled_from("abcde"),
            st.integers(min_value=0, max_value=1000),
        ),
        st.tuples(st.just("release"), st.sampled_from("abcde"), st.just(0)),
    ),
    max_size=40,
)


class TestMeterInvariants:
    @given(sequence=actions)
    @settings(**SETTINGS)
    def test_unbudgeted_bookkeeping(self, sequence):
        """current == sum of live labels; peak is a running max;
        per-label high-water dominates the live value."""
        meter = MemoryMeter()
        shadow = {}
        running_peak = 0
        for op, label, size in sequence:
            if op == "charge":
                meter.charge(label, size)
                shadow[label] = size
            else:
                meter.release(label)
                shadow.pop(label, None)
            running_peak = max(running_peak, sum(shadow.values()))
            assert meter.current_bytes == sum(shadow.values())
        assert meter.peak_bytes == running_peak
        for label, size in meter.live_breakdown().items():
            assert meter.high_water_breakdown()[label] >= size

    @given(sequence=actions, budget=st.integers(min_value=1, max_value=1500))
    @settings(**SETTINGS)
    def test_budget_never_exceeded(self, sequence, budget):
        """Whatever happens, the live total never passes the budget,
        and a rejected charge leaves the state untouched."""
        meter = MemoryMeter(budget_bytes=budget)
        for op, label, size in sequence:
            before_live = meter.live_breakdown()
            before_peak = meter.peak_bytes
            try:
                if op == "charge":
                    meter.charge(label, size)
                else:
                    meter.release(label)
            except MemoryBudgetExceeded:
                assert meter.live_breakdown() == before_live
                assert meter.peak_bytes == before_peak
            assert meter.current_bytes <= budget
            assert meter.peak_bytes <= budget
