"""Property test for WeightedDiGraph's duplicate-edge coalescing.

The group-sum uses ``np.add.reduceat`` over a lexsorted edge list —
easy to get subtly wrong at group boundaries, so it gets its own
shadow-model fuzz.
"""

from collections import defaultdict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.weighted import WeightedDiGraph

SETTINGS = dict(max_examples=80, deadline=None)


@st.composite
def weighted_triples(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    count = draw(st.integers(min_value=0, max_value=40))
    triples = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.floats(min_value=0.01, max_value=10.0, allow_nan=False)),
        )
        for _ in range(count)
    ]
    return n, triples


class TestCoalescing:
    @given(data=weighted_triples())
    @settings(**SETTINGS)
    def test_matches_dict_shadow_model(self, data):
        n, triples = data
        graph = WeightedDiGraph(n, triples)
        shadow = defaultdict(float)
        for s, t, w in triples:
            shadow[(s, t)] += w
        assert graph.num_edges == len(shadow)
        for (s, t), total in shadow.items():
            np.testing.assert_allclose(graph.edge_weight(s, t), total, rtol=1e-9)

    @given(data=weighted_triples())
    @settings(**SETTINGS)
    def test_total_weight_preserved(self, data):
        n, triples = data
        graph = WeightedDiGraph(n, triples)
        expected = sum(w for _, _, w in triples)
        np.testing.assert_allclose(
            graph.edge_weights.sum(), expected, rtol=1e-9, atol=1e-12
        )

    @given(data=weighted_triples())
    @settings(**SETTINGS)
    def test_strengths_consistent_with_weights(self, data):
        n, triples = data
        graph = WeightedDiGraph(n, triples)
        np.testing.assert_allclose(
            graph.in_strength().sum(), graph.edge_weights.sum(), rtol=1e-12
        )
        np.testing.assert_allclose(
            graph.out_strength().sum(), graph.edge_weights.sum(), rtol=1e-12
        )
