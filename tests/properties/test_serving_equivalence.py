"""Property: the serving layer is bit-exact in every cache state.

Theorem 3.5 makes each output column a function of its seed alone, and
``CSRPlusIndex.query_columns`` evaluates columns batch-independently,
so the serving cache is *exact*: for any graph, any sequence of
overlapping batches, and any cache capacity (cold, warm, or constantly
evicting), ``CoSimRankService`` must return blocks ``np.array_equal``
to direct ``CSRPlusIndex.query()`` calls.  Hypothesis searches for a
counterexample.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import CSRPlusIndex
from repro.graphs.digraph import DiGraph
from repro.serving import CoSimRankService

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_batches(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=3 * n, unique=True)
    )
    seed = st.integers(min_value=0, max_value=n - 1)
    request = st.lists(seed, min_size=1, max_size=4)  # duplicates allowed
    batch = st.lists(request, min_size=1, max_size=3)
    batches = draw(st.lists(batch, min_size=1, max_size=4))
    rank = draw(st.integers(min_value=1, max_value=min(4, n)))
    return DiGraph(n, edges), batches, rank


def _assert_batches_exact(service, index, batches):
    for batch in batches:
        blocks = service.serve_batch(batch)
        for request, block in zip(batch, blocks):
            direct = index.query(request)
            assert block.shape == direct.shape
            assert np.array_equal(block, direct)


class TestServingEquivalence:
    @given(data=graph_and_batches())
    @settings(**SETTINGS)
    def test_cold_then_warm_cache(self, data):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        with CoSimRankService(index, cache_columns=64, max_workers=1) as service:
            _assert_batches_exact(service, index, batches)  # cold misses
            _assert_batches_exact(service, index, batches)  # warm hits
            stats = service.stats()
            assert stats.hits + stats.misses == stats.unique_seeds

    @given(data=graph_and_batches())
    @settings(**SETTINGS)
    def test_tiny_capacity_mid_eviction(self, data):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        with CoSimRankService(index, cache_columns=1, max_workers=1) as service:
            _assert_batches_exact(service, index, batches)
            _assert_batches_exact(service, index, batches)

    @given(data=graph_and_batches())
    @settings(**SETTINGS)
    def test_cache_disabled(self, data):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        with CoSimRankService(index, cache_columns=0, max_workers=1) as service:
            _assert_batches_exact(service, index, batches)
            assert service.stats().hits == 0

    @given(data=graph_and_batches(), chunk_size=st.integers(1, 5))
    @settings(**SETTINGS)
    def test_chunking_and_threads_preserve_bits(self, data, chunk_size):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        with CoSimRankService(
            index, cache_columns=2, max_workers=2, chunk_size=chunk_size
        ) as service:
            _assert_batches_exact(service, index, batches)


@st.composite
def fault_plans(draw):
    """A random :class:`FaultPlan` armed against the compute/cache seams.

    Deadlines are deliberately excluded — they depend on wall-clock and
    would make the property flaky.  Everything drawn here must either
    heal (transient faults retried per-seed) or surface a typed error,
    never a wrong column.
    """
    from repro.testing.faults import FaultPlan

    plan = FaultPlan(sleep=lambda s: None)  # delays are free under test
    n_rules = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_rules):
        kind = draw(st.sampled_from(["fail", "delay", "corrupt"]))
        times = draw(st.integers(min_value=1, max_value=3))
        if kind == "fail":
            exc = draw(st.sampled_from([
                OSError("injected"), RuntimeError("injected"),
                KeyError("injected"),
            ]))
            plan.fail("compute.chunk", times=times, exc=exc)
        elif kind == "delay":
            plan.delay("compute.chunk", seconds=0.001, times=times)
        else:
            plan.corrupt(
                "cache.read",
                lambda col: np.where(col == 0.0, 1.0, -col),
                times=times,
            )
    return plan


class TestServingUnderFaults:
    """Under any random fault plan the service never returns a wrong
    column and never leaks an untyped error: each outcome is either a
    bit-exact match for ``index.query`` or a :class:`ReproError`.
    """

    @given(data=graph_and_batches(), plan=fault_plans())
    @settings(**SETTINGS)
    def test_outcomes_are_exact_or_typed(self, data, plan):
        from repro.errors import ReproError

        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        with CoSimRankService(
            index, cache_columns=8, max_workers=2, chunk_size=2,
            cache_validate=True,
        ) as service:
            with plan:
                for batch in batches:
                    result = service.serve_batch_detailed(batch)
                    for request, outcome in zip(batch, result.outcomes):
                        if outcome.ok:
                            assert np.array_equal(
                                outcome.result, index.query(request)
                            )
                        else:
                            assert isinstance(outcome.error, ReproError)
            # once the plan is exhausted/disarmed the service has fully
            # healed: nothing poisonous was cached along the way
            _assert_batches_exact(service, index, batches)

    @given(data=graph_and_batches(), plan=fault_plans())
    @settings(**SETTINGS)
    def test_partial_mode_never_raises(self, data, plan):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        with CoSimRankService(
            index, cache_columns=8, max_workers=1, cache_validate=True
        ) as service:
            with plan:
                for batch in batches:
                    blocks = service.serve_batch(batch, partial=True)
                    for request, block in zip(batch, blocks):
                        if block is not None:
                            assert np.array_equal(block, index.query(request))
