"""Property: the batched-GEMM query fast path honours its contracts.

Three contracts, each searched for counterexamples with Hypothesis:

1. **Exactness of the default.** ``query_mode="exact"`` output is
   bit-identical to the canonical per-seed GEMV loop (the pre-fast-path
   evaluation) — the fast path must not perturb the default by a single
   ulp.
2. **Tolerance equivalence of the fast path.** For any graph, any seed
   batch, and either storage dtype, every entry of the batched result
   is within ``batched_query_atol(rank, dtype)`` of the exact one.
3. **Serving equivalence in batched mode.** ``CoSimRankService`` with
   ``query_mode="batched"`` serves blocks tolerance-equal to direct
   ``index.query()`` in every cache state (cold, warm, mid-eviction,
   disabled), and a warm hit replays the cold computation's exact bytes
   (determinism per cache state).  This mirrors
   ``test_serving_equivalence.py``, which pins the bit-exact contract
   of ``"exact"`` mode; CI runs both files as the dual-mode lane.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.serving import CoSimRankService

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_seeds(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=3 * n, unique=True)
    )
    seed = st.integers(min_value=0, max_value=n - 1)
    seeds = draw(st.lists(seed, min_size=1, max_size=2 * n))  # dups allowed
    rank = draw(st.integers(min_value=1, max_value=min(4, n)))
    dtype = draw(st.sampled_from(["float64", "float32"]))
    return DiGraph(n, edges), seeds, rank, dtype


@st.composite
def graph_and_batches(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=3 * n, unique=True)
    )
    seed = st.integers(min_value=0, max_value=n - 1)
    request = st.lists(seed, min_size=1, max_size=4)
    batch = st.lists(request, min_size=1, max_size=3)
    batches = draw(st.lists(batch, min_size=1, max_size=4))
    rank = draw(st.integers(min_value=1, max_value=min(4, n)))
    return DiGraph(n, edges), batches, rank


def _reference_per_seed_columns(index, seeds):
    """The canonical exact evaluation, re-implemented verbatim.

    One fixed-order row reduction per seed (``np.einsum`` with the
    default ``optimize=False``) — the partition-stable kernel that
    ``repro.core.index.exact_column_product`` pins, written out here
    independently so a kernel regression cannot hide behind its own
    reference.
    """
    u, _, _, z = index.factors
    out = np.empty((index.num_nodes, len(seeds)), dtype=z.dtype, order="F")
    for j, seed in enumerate(np.asarray(seeds, dtype=np.int64)):
        column = index.damping * np.einsum("ij,j->i", z, u[int(seed), :])
        column[seed] += 1.0
        out[:, j] = column
    return out


class TestModeContracts:
    @given(data=graph_and_seeds())
    @settings(**SETTINGS)
    def test_exact_mode_matches_reference_bitwise(self, data):
        graph, seeds, rank, dtype = data
        index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
        reference = _reference_per_seed_columns(index, seeds)
        assert np.array_equal(index.query_columns(seeds), reference)
        assert np.array_equal(
            index.query_columns(seeds, mode="exact"), reference
        )
        # query() routes through the same primitive for distinct seeds
        assert np.array_equal(
            index.query(sorted(set(seeds))),
            index.query_columns(sorted(set(seeds))),
        )

    @given(data=graph_and_seeds())
    @settings(**SETTINGS)
    def test_batched_within_atol_of_exact(self, data):
        graph, seeds, rank, dtype = data
        index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
        exact = index.query_columns(seeds, mode="exact")
        batched = index.query_columns(seeds, mode="batched")
        atol = batched_query_atol(rank, exact.dtype)
        assert batched.dtype == exact.dtype
        assert batched.shape == exact.shape
        assert batched.flags.f_contiguous
        np.testing.assert_allclose(
            batched.astype(np.float64),
            exact.astype(np.float64),
            rtol=0.0,
            atol=atol,
        )

    @given(data=graph_and_seeds())
    @settings(**SETTINGS)
    def test_config_mode_is_the_default(self, data):
        graph, seeds, rank, dtype = data
        batched_index = CSRPlusIndex(
            graph, rank=rank, dtype=dtype, query_mode="batched"
        ).prepare()
        assert np.array_equal(
            batched_index.query_columns(seeds),
            batched_index.query_columns(seeds, mode="batched"),
        )

    def test_invalid_mode_rejected(self):
        index = CSRPlusIndex(DiGraph(3, [(0, 1)]), rank=2).prepare()
        with pytest.raises(InvalidParameterError):
            index.query_columns([0], mode="vectorised")
        with pytest.raises(InvalidParameterError):
            CSRPlusIndex(DiGraph(3, [(0, 1)]), rank=2, query_mode="nope")


def _assert_batches_tolerance_equal(service, index, batches, atol):
    for batch in batches:
        blocks = service.serve_batch(batch)
        for request, block in zip(batch, blocks):
            direct = index.query(request)
            assert block.shape == direct.shape
            assert block.dtype == direct.dtype
            np.testing.assert_allclose(block, direct, rtol=0.0, atol=atol)


class TestBatchedServingEquivalence:
    """The serving-equivalence suite, run under the batched contract."""

    @given(data=graph_and_batches())
    @settings(**SETTINGS)
    def test_cold_then_warm_cache(self, data):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        atol = batched_query_atol(rank, np.float64)
        with CoSimRankService(
            index, cache_columns=64, max_workers=1, query_mode="batched"
        ) as service:
            cold = [service.serve_batch(batch) for batch in batches]
            _assert_batches_tolerance_equal(service, index, batches, atol)
            # warm hits replay the cold computation's exact bytes
            warm = [service.serve_batch(batch) for batch in batches]
            for cold_blocks, warm_blocks in zip(cold, warm):
                for cold_block, warm_block in zip(cold_blocks, warm_blocks):
                    assert np.array_equal(cold_block, warm_block)

    @given(data=graph_and_batches())
    @settings(**SETTINGS)
    def test_tiny_capacity_mid_eviction(self, data):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        atol = batched_query_atol(rank, np.float64)
        with CoSimRankService(
            index, cache_columns=1, max_workers=1, query_mode="batched"
        ) as service:
            _assert_batches_tolerance_equal(service, index, batches, atol)
            _assert_batches_tolerance_equal(service, index, batches, atol)

    @given(data=graph_and_batches())
    @settings(**SETTINGS)
    def test_cache_disabled(self, data):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        atol = batched_query_atol(rank, np.float64)
        with CoSimRankService(
            index, cache_columns=0, max_workers=1, query_mode="batched"
        ) as service:
            _assert_batches_tolerance_equal(service, index, batches, atol)
            assert service.stats().hits == 0

    @given(data=graph_and_batches(), chunk_size=st.integers(1, 5))
    @settings(**SETTINGS)
    def test_chunking_and_threads_stay_within_atol(self, data, chunk_size):
        graph, batches, rank = data
        index = CSRPlusIndex(graph, rank=rank).prepare()
        atol = batched_query_atol(rank, np.float64)
        with CoSimRankService(
            index,
            cache_columns=2,
            max_workers=2,
            chunk_size=chunk_size,
            query_mode="batched",
        ) as service:
            _assert_batches_tolerance_equal(service, index, batches, atol)
