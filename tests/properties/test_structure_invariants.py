"""Property-based tests of the substrates (graphs, vec/kron, Stein)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.graphs.digraph import DiGraph
from repro.graphs.transition import is_column_substochastic, transition_matrix
from repro.linalg.kronecker import kron, unvec, vec
from repro.linalg.stein import solve_stein_direct, solve_stein_squaring

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_floats = st.floats(
    min_value=-2.0, max_value=2.0, allow_nan=False, allow_infinity=False
)


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    count = draw(st.integers(min_value=0, max_value=40))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(count)
    ]
    return n, edges


class TestGraphProperties:
    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_degree_sums_equal_edge_count(self, data):
        n, edges = data
        graph = DiGraph(n, edges)
        assert graph.in_degrees().sum() == graph.num_edges
        assert graph.out_degrees().sum() == graph.num_edges

    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_reverse_swaps_degrees(self, data):
        n, edges = data
        graph = DiGraph(n, edges)
        rev = graph.reverse()
        np.testing.assert_array_equal(graph.in_degrees(), rev.out_degrees())
        np.testing.assert_array_equal(graph.out_degrees(), rev.in_degrees())

    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_transition_always_substochastic(self, data):
        n, edges = data
        graph = DiGraph(n, edges)
        assert is_column_substochastic(transition_matrix(graph))

    @given(data=edge_lists())
    @settings(**SETTINGS)
    def test_add_then_remove_roundtrip(self, data):
        n, edges = data
        graph = DiGraph(n, edges)
        if n < 2:
            return
        candidate = (0, n - 1)
        if graph.has_edge(*candidate):
            return
        modified = graph.with_edges_added([candidate]).with_edges_removed(
            [candidate]
        )
        assert modified == graph


class TestVecKronProperties:
    @given(
        matrix=arrays(np.float64, (4, 3), elements=small_floats),
    )
    @settings(**SETTINGS)
    def test_vec_unvec_roundtrip(self, matrix):
        np.testing.assert_array_equal(unvec(vec(matrix), 4, 3), matrix)

    @given(
        a=arrays(np.float64, (3, 3), elements=small_floats),
        b=arrays(np.float64, (2, 2), elements=small_floats),
    )
    @settings(**SETTINGS)
    def test_kron_bilinearity(self, a, b):
        np.testing.assert_allclose(
            kron(2.0 * a, b), 2.0 * kron(a, b), atol=1e-9
        )

    @given(
        a=arrays(np.float64, (3, 2), elements=small_floats),
        x=arrays(np.float64, (2, 2), elements=small_floats),
        b=arrays(np.float64, (2, 3), elements=small_floats),
    )
    @settings(**SETTINGS)
    def test_vec_product_identity(self, a, x, b):
        np.testing.assert_allclose(
            vec(a @ x @ b), kron(b.T, a) @ vec(x), atol=1e-8
        )


class TestSteinProperties:
    @given(
        h_raw=arrays(np.float64, (5, 5), elements=small_floats),
        c=st.sampled_from([0.3, 0.6, 0.8]),
    )
    @settings(**SETTINGS)
    def test_squaring_equals_direct_for_contractions(self, h_raw, c):
        norm = np.linalg.norm(h_raw, ord=2)
        if norm < 1e-12:
            h = h_raw
        else:
            h = h_raw * (0.95 / norm)  # ensure sqrt(c)||H|| < 1
        p_direct = solve_stein_direct(h, c)
        p_squared, _ = solve_stein_squaring(h, c, epsilon=1e-12)
        np.testing.assert_allclose(p_squared, p_direct, atol=1e-8)

    @given(
        h_raw=arrays(np.float64, (4, 4), elements=small_floats),
        c=st.sampled_from([0.4, 0.7]),
    )
    @settings(**SETTINGS)
    def test_solution_psd(self, h_raw, c):
        norm = np.linalg.norm(h_raw, ord=2)
        h = h_raw if norm < 1e-12 else h_raw * (0.9 / norm)
        p = solve_stein_direct(h, c)
        assert np.all(np.linalg.eigvalsh((p + p.T) / 2) > -1e-9)
