"""Differential property tests: independent implementations agree.

Three fully independent code paths compute CoSimRank in this package —
the dense fixed point, the low-rank CSR+ pipeline, and the paired-PPR
single-pair algorithm.  Hypothesis drives random graphs and random
pairs through all three; any disagreement beyond tolerances is a bug in
exactly one of them.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.single_pair import single_pair_cosimrank
from repro.core.index import CSRPlusIndex
from repro.graphs.digraph import DiGraph
from repro.graphs.weighted import WeightedDiGraph

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_pair(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=3 * n, unique=True)
    )
    a = draw(st.integers(min_value=0, max_value=n - 1))
    b = draw(st.integers(min_value=0, max_value=n - 1))
    return DiGraph(n, edges), a, b


@st.composite
def weighted_graph(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    pairs = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=2 * n, unique=True)
    )
    weights = [
        draw(st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
        for _ in pairs
    ]
    return WeightedDiGraph(n, [(s, t, w) for (s, t), w in zip(pairs, weights)])


class TestThreeWayAgreement:
    @given(data=graph_and_pair())
    @settings(**SETTINGS)
    def test_exact_vs_single_pair(self, data):
        graph, a, b = data
        exact = ExactCoSimRank(graph, epsilon=1e-13).single_pair(a, b)
        paired, _ = single_pair_cosimrank(graph, a, b, epsilon=1e-11)
        assert abs(exact - paired) < 1e-9

    @given(data=graph_and_pair())
    @settings(**SETTINGS)
    def test_exact_vs_full_rank_csr_plus(self, data):
        graph, a, b = data
        exact = ExactCoSimRank(graph, epsilon=1e-13).single_pair(a, b)
        low_rank = CSRPlusIndex(
            graph, rank=graph.num_nodes, epsilon=1e-13
        ).single_pair(a, b)
        assert abs(exact - low_rank) < 1e-7


class TestWeightedAgreement:
    @given(graph=weighted_graph())
    @settings(**SETTINGS)
    def test_weighted_exact_vs_csr_plus(self, graph):
        exact = ExactCoSimRank(graph, epsilon=1e-13).all_pairs()
        approx = CSRPlusIndex(
            graph, rank=graph.num_nodes, epsilon=1e-13
        ).all_pairs()
        np.testing.assert_allclose(approx, exact, atol=1e-7)

    @given(graph=weighted_graph())
    @settings(**SETTINGS)
    def test_weighted_invariants(self, graph):
        s_matrix = ExactCoSimRank(graph, epsilon=1e-13).all_pairs()
        np.testing.assert_allclose(s_matrix, s_matrix.T, atol=1e-9)
        assert np.diag(s_matrix).min() >= 1.0 - 1e-10
        assert s_matrix.min() >= -1e-10
