"""Property: the approximate tier honours its published error contract.

The approximate serving tier (docs/approx.md) answers with sketched
estimates, and :func:`repro.serving.approx.approx_query_atol` is the
contract for how wrong they may be: for any graph, any seeds, any
sketch width ``d``, any dtype, and any RNG seed, the AvgDiff (the
paper's §6 accuracy metric) between an :class:`ApproxIndex` block and
the exact tier's block for the same request must stay under the atol.
Hypothesis searches for a counterexample; a second property pins the
replica's determinism — the sketches are a pure function of the
configuration, byte for byte — which the registry's checksum tier and
the bench trajectory both rely on.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import CSRPlusIndex
from repro.graphs.digraph import DiGraph
from repro.metrics.accuracy import avg_diff
from repro.serving.approx import (
    APPROX_ATOL_SAFETY,
    ApproxIndex,
    approx_query_atol,
)

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PROJECTIONS = (64, 256, 1024)
DTYPES = ("float32", "float64")


@st.composite
def graph_and_query(draw):
    n = draw(st.integers(min_value=3, max_value=16))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=2, max_size=3 * n, unique=True)
    )
    seeds = draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=4)
    )  # duplicates allowed, like any served request
    rank = draw(st.integers(min_value=2, max_value=min(5, n)))
    return DiGraph(n, edges), seeds, rank


class TestApproxErrorContract:
    @given(
        data=graph_and_query(),
        d=st.sampled_from(PROJECTIONS),
        dtype=st.sampled_from(DTYPES),
        sketch_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**SETTINGS)
    def test_avg_diff_within_published_atol(self, data, d, dtype, sketch_seed):
        graph, seeds, rank = data
        exact = CSRPlusIndex(graph, rank=rank).prepare()
        approx = ApproxIndex.for_rank(
            graph, rank, num_projections=d, seed=sketch_seed, dtype=dtype
        ).prepare()
        block_a = approx.query_columns(seeds)
        block_e = exact.query_columns(seeds)
        assert block_a.shape == block_e.shape
        assert block_a.dtype == np.dtype(dtype)
        assert avg_diff(block_a, block_e) <= approx.query_atol()

    @given(data=graph_and_query(), d=st.sampled_from(PROJECTIONS))
    @settings(**SETTINGS)
    def test_atol_matches_standard_error_bound(self, data, d):
        graph, _, rank = data
        approx = ApproxIndex.for_rank(graph, rank, num_projections=d)
        assert approx.query_atol() == approx_query_atol(d, approx.damping)
        assert approx.query_atol() == (
            APPROX_ATOL_SAFETY * approx.standard_error_bound()
        )


class TestApproxDeterminism:
    @given(
        data=graph_and_query(),
        d=st.sampled_from((64, 256)),
        dtype=st.sampled_from(DTYPES),
        sketch_seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**SETTINGS)
    def test_same_seed_gives_byte_identical_sketches(
        self, data, d, dtype, sketch_seed
    ):
        graph, seeds, rank = data
        first = ApproxIndex.for_rank(
            graph, rank, num_projections=d, seed=sketch_seed, dtype=dtype
        ).prepare()
        second = ApproxIndex.for_rank(
            graph, rank, num_projections=d, seed=sketch_seed, dtype=dtype
        ).prepare()
        for y1, y2 in zip(first._engine._sketches, second._engine._sketches):
            assert y1.dtype == y2.dtype
            assert y1.tobytes() == y2.tobytes()
        assert np.array_equal(
            first.query_columns(seeds), second.query_columns(seeds)
        )
