"""Property-based fuzzing of the edge-list reader/writer."""

import io

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError, ReproError
from repro.graphs.digraph import DiGraph
from repro.graphs.io import parse_edge_list, read_edge_list, write_edge_list

SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    count = draw(st.integers(min_value=0, max_value=60))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(count)
    ]
    return DiGraph(n, edges)


class TestRoundTripProperty:
    @given(graph=graphs())
    @settings(**SETTINGS)
    def test_write_read_preserves_edges(self, graph):
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        buffer.seek(0)
        loaded, _ = read_edge_list(buffer, relabel=False)
        assert list(loaded.edges()) == list(graph.edges())


class TestParserNeverCrashesUnsafely:
    @given(text=st.text(max_size=400))
    @settings(**SETTINGS)
    def test_arbitrary_text(self, text):
        """The parser either succeeds or raises a library error —
        never an unrelated exception type."""
        try:
            graph, mapping = parse_edge_list(text)
        except ReproError:
            return
        assert graph.num_nodes == len(mapping)

    @given(
        text=st.text(
            alphabet=st.sampled_from("0123456789 \t\n#"), max_size=300
        )
    )
    @settings(**SETTINGS)
    def test_numeric_soup(self, text):
        try:
            graph, _ = parse_edge_list(text, relabel=False)
        except GraphFormatError:
            return
        assert graph.num_edges >= 0
