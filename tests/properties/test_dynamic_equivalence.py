"""Property: a live-repaired index is indistinguishable from a rebuild.

The live chain (docs/dynamic.md) answers queries after any sequence of
edge batches through targeted repair — only the node ranges whose
``Z``/``U`` rows changed are rewritten, the serving caches are patched
per seed instead of flushed.  Theorem 3.5 row independence is what
makes that sound, so the property to pin is equivalence with the
boring alternative: throw everything away and ``prepare()`` from
scratch on the mutated graph.  Hypothesis searches for a
counter-example across:

* arbitrary small digraphs and random add/remove batch sequences
  (duplicates, re-adds of existing edges, and removals of missing
  edges included — byte-no-op batches are the targeted repair's best
  case and must still be correct);
* monolithic chains and sharded chains with shard counts ``{1, 2, 7}``;
* both storage dtypes (float64 / float32);
* exact mode bit-identical (``np.array_equal``), batched mode within
  :func:`~repro.core.index.batched_query_atol`;
* the served path across version swaps — a warm
  :class:`~repro.serving.CoSimRankService` attached before the updates
  must serve post-swap answers (columns *and* top-k rankings)
  bit-identical to a cold from-scratch service.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.core.topk import top_k_blockwise
from repro.graphs.digraph import DiGraph
from repro.serving import CoSimRankService, LiveIndexChain

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: ``None`` is a monolithic chain; the rest exercise targeted repair.
SHARD_COUNTS = (None, 1, 2, 7)


@st.composite
def dynamic_case(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edge = st.sampled_from(possible)
    initial = draw(st.lists(edge, min_size=1, max_size=2 * n, unique=True))
    batches = draw(
        st.lists(
            st.tuples(
                st.lists(edge, min_size=0, max_size=4),  # added
                st.lists(edge, min_size=0, max_size=2),  # removed (may miss)
            ),
            min_size=1,
            max_size=2,
        )
    )
    seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=6
        )
    )
    rank = draw(st.integers(min_value=1, max_value=min(4, n)))
    dtype = draw(st.sampled_from(["float64", "float32"]))
    num_shards = draw(st.sampled_from(SHARD_COUNTS))
    return DiGraph(n, initial), batches, seeds, rank, dtype, num_shards


def _build_chain(case, tmp_path_factory):
    graph, batches, seeds, rank, dtype, num_shards = case
    kwargs = {}
    if num_shards is not None:
        kwargs["num_shards"] = num_shards
        kwargs["store_root"] = str(tmp_path_factory.mktemp("live"))
    chain = LiveIndexChain(graph, rank=rank, dtype=dtype, **kwargs)
    return chain, batches, seeds, rank, dtype


@settings(**SETTINGS)
@given(case=dynamic_case())
def test_exact_mode_bit_identical_to_scratch(case, tmp_path_factory):
    """Contract 1: after any batch sequence, exact-mode answers match a
    from-scratch prepare on the mutated graph to the bit."""
    chain, batches, seeds, rank, dtype = _build_chain(case, tmp_path_factory)
    for added, removed in batches:
        chain.update_edges(added=added, removed=removed)
    scratch = CSRPlusIndex(chain.graph, rank=rank, dtype=dtype).prepare()
    got = chain.index.query_columns(seeds, mode="exact")
    want = scratch.query_columns(seeds, mode="exact")
    assert got.dtype == want.dtype
    assert np.array_equal(got, want)


@settings(**SETTINGS)
@given(case=dynamic_case())
def test_batched_mode_within_atol_of_scratch(case, tmp_path_factory):
    """Contract 2: the repaired factors keep batched mode inside the
    documented tolerance of the scratch exact answer."""
    chain, batches, seeds, rank, dtype = _build_chain(case, tmp_path_factory)
    for added, removed in batches:
        chain.update_edges(added=added, removed=removed)
    scratch = CSRPlusIndex(chain.graph, rank=rank, dtype=dtype).prepare()
    got = chain.index.query_columns(seeds, mode="batched")
    want = scratch.query_columns(seeds, mode="exact")
    atol = batched_query_atol(rank, np.dtype(dtype))
    np.testing.assert_allclose(
        got.astype(np.float64),
        want.astype(np.float64),
        rtol=0.0,
        atol=atol,
    )


@settings(**SETTINGS)
@given(case=dynamic_case())
def test_served_answers_survive_version_swaps(case, tmp_path_factory):
    """Contract 3: a service warmed *before* the updates — so its cache
    must be dropped/patched/retained correctly across every swap —
    serves post-swap columns and rankings bit-identical to a cold
    from-scratch service."""
    chain, batches, seeds, rank, dtype = _build_chain(case, tmp_path_factory)
    k = min(3, chain.graph.num_nodes)
    with CoSimRankService(chain.index, max_workers=1) as service:
        chain.attach(service)
        service.serve_batch([seeds])  # warm the column cache on v0
        service.serve_topk(seeds, k)  # ... and the ranking cache
        for added, removed in batches:
            chain.update_edges(added=added, removed=removed)
        assert service.index_version == chain.version
        got = service.serve_batch([seeds])[0]
        got_topk = service.serve_topk(seeds, k)
    scratch = CSRPlusIndex(chain.graph, rank=rank, dtype=dtype).prepare()
    assert np.array_equal(got, scratch.query_columns(seeds, mode="exact"))
    want_topk = top_k_blockwise(scratch, seeds, k, mode="exact")
    for got_r, want_r in zip(got_topk, want_topk):
        assert np.array_equal(got_r.nodes, want_r.nodes)
        assert np.array_equal(got_r.scores, want_r.scores)
