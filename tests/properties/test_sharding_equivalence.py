"""Property: sharded queries are indistinguishable from monolithic ones.

The row-partition argument (docs/sharding.md): ``S[x,q] = [x=q] +
c * <Z[x], U[q]>`` depends only on row ``x`` of ``Z``, so cutting the
factors into node-range shards and concatenating per-shard results must
reproduce the monolithic answer. Hypothesis searches for a counter-
example across:

* arbitrary small digraphs, seed batches (duplicates allowed), ranks;
* shard counts ``{1, 2, 7, n}`` — one shard, a couple, an uneven
  layout, and the degenerate one-row-per-shard extreme;
* both storage dtypes (float64 / float32);
* both query modes — ``"exact"`` must be bit-identical
  (``np.array_equal``), ``"batched"`` within
  :func:`~repro.core.index.batched_query_atol`;
* cold and warm cache states when served through
  :class:`~repro.serving.CoSimRankService`.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.graphs.digraph import DiGraph
from repro.serving import CoSimRankService
from repro.sharding import ShardedIndex, shard_index

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SHARD_COUNTS = (1, 2, 7, None)  # None stands for n (one row per shard)


@st.composite
def sharding_case(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=3 * n, unique=True)
    )
    seed = st.integers(min_value=0, max_value=n - 1)
    seeds = draw(st.lists(seed, min_size=1, max_size=2 * n))  # dups allowed
    rank = draw(st.integers(min_value=1, max_value=min(4, n)))
    dtype = draw(st.sampled_from(["float64", "float32"]))
    num_shards = draw(st.sampled_from(SHARD_COUNTS))
    return DiGraph(n, edges), seeds, rank, dtype, num_shards or n


@settings(**SETTINGS)
@given(case=sharding_case())
def test_exact_mode_bit_identical_for_any_layout(case, tmp_path_factory):
    """Contract 1: exact mode survives sharding without moving one ulp."""
    graph, seeds, rank, dtype, num_shards = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    store = shard_index(
        index,
        tmp_path_factory.mktemp("store"),
        num_shards=num_shards,
    )
    with ShardedIndex(store, max_workers=1) as sharded:
        got = sharded.query_columns(seeds, mode="exact")
    want = index.query_columns(seeds, mode="exact")
    assert got.dtype == want.dtype
    assert np.array_equal(got, want)


@settings(**SETTINGS)
@given(case=sharding_case())
def test_batched_mode_within_atol_for_any_layout(case, tmp_path_factory):
    """Contract 2: the per-shard GEMM stays inside the documented atol."""
    graph, seeds, rank, dtype, num_shards = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    store = shard_index(
        index,
        tmp_path_factory.mktemp("store"),
        num_shards=num_shards,
    )
    with ShardedIndex(store, max_workers=1) as sharded:
        got = sharded.query_columns(seeds, mode="batched")
    want = index.query_columns(seeds, mode="exact")
    atol = batched_query_atol(rank, np.dtype(dtype))
    np.testing.assert_allclose(
        got.astype(np.float64),
        want.astype(np.float64),
        rtol=0.0,
        atol=atol,
    )


@settings(**SETTINGS)
@given(case=sharding_case())
def test_served_sharded_matches_served_monolithic(case, tmp_path_factory):
    """Contract 3: behind CoSimRankService the backends are
    interchangeable — cold serves match, and a warm (cache-hit) pass
    replays the cold bytes on both."""
    graph, seeds, rank, dtype, num_shards = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    store = shard_index(
        index,
        tmp_path_factory.mktemp("store"),
        num_shards=num_shards,
    )
    with ShardedIndex(store, max_workers=1) as sharded:
        with CoSimRankService(index, max_workers=1) as mono_service:
            with CoSimRankService(sharded, max_workers=1) as shard_service:
                mono_cold = mono_service.serve_batch([seeds])[0]
                shard_cold = shard_service.serve_batch([seeds])[0]
                assert np.array_equal(shard_cold, mono_cold)
                shard_warm = shard_service.serve_batch([seeds])[0]
                assert np.array_equal(shard_warm, shard_cold)
                hits = shard_service.stats().hits
    assert hits > 0  # the warm pass really exercised the cache


@settings(**SETTINGS)
@given(case=sharding_case())
def test_parallel_fanout_equals_serial(case, tmp_path_factory):
    """Thread-pool assembly is a pure partition of the output rows:
    worker count must never show up in the bytes."""
    graph, seeds, rank, dtype, num_shards = case
    index = CSRPlusIndex(graph, rank=rank, dtype=dtype).prepare()
    store = shard_index(
        index,
        tmp_path_factory.mktemp("store"),
        num_shards=num_shards,
    )
    with ShardedIndex(store, max_workers=1) as serial:
        want = serial.query_columns(seeds)
    with ShardedIndex(store, max_workers=4) as pooled:
        assert np.array_equal(pooled.query_columns(seeds), want)
