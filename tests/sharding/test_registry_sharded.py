"""IndexRegistry resolution of sharded stores: tiers, repair, eviction.

Satellite acceptance: the sha256 sidecar-integrity pattern extends to
shard manifests, and a corrupt *single shard* is quarantined and
rebuilt without touching its healthy neighbours.
"""

import os

import numpy as np
import pytest

from repro.graphs.generators import chung_lu
from repro.obs.metrics import MetricsRegistry
from repro.serving import IndexRegistry

SEEDS = [0, 7, 99]


@pytest.fixture
def graph():
    return chung_lu(100, 500, seed=5)


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def registry(tmp_path, metrics):
    return IndexRegistry(tmp_path / "registry", metrics=metrics)


def _get(registry, graph, **kwargs):
    return registry.get_sharded(
        "cl100", graph, rank=6, num_shards=4, max_workers=1, **kwargs
    )


def _flip_byte(path):
    data = bytearray(open(path, "rb").read())
    data[-9] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(data))


class TestTiers:
    def test_build_then_memory_then_disk(self, registry, graph):
        built = _get(registry, graph)
        want = built.query_columns(SEEDS)
        path = registry.shard_store_path_for("cl100")
        assert os.path.exists(os.path.join(path, "manifest.json"))

        assert _get(registry, graph) is built  # memory tier

        built.close()
        registry.evict("cl100")
        reloaded = _get(registry, graph)  # disk tier
        assert reloaded is not built
        assert np.array_equal(reloaded.query_columns(SEEDS), want)
        reloaded.close()

    def test_evict_delete_file_removes_store(self, registry, graph):
        sharded = _get(registry, graph)
        sharded.close()
        path = registry.shard_store_path_for("cl100")
        registry.evict("cl100", delete_file=True)
        assert not os.path.exists(path)


class TestSingleShardRepair:
    def test_corrupt_shard_is_quarantined_and_rebuilt(
        self, registry, graph, metrics
    ):
        built = _get(registry, graph)
        want = built.query_columns(SEEDS)
        built.close()
        registry.evict("cl100")

        path = registry.shard_store_path_for("cl100")
        _flip_byte(os.path.join(path, "shard-00002.z.npy"))
        # record every file that is NOT part of the damaged shard
        healthy = {
            name: os.path.getmtime(os.path.join(path, name))
            for name in sorted(os.listdir(path))
            if not name.startswith("shard-00002")
        }

        repaired = _get(registry, graph)
        assert np.array_equal(repaired.query_columns(SEEDS), want)
        repaired.close()

        # the repair unit is the shard (both of its files), nothing else
        after = {
            name: os.path.getmtime(os.path.join(path, name))
            for name in sorted(os.listdir(path))
        }
        assert all(after[name] == stamp for name, stamp in healthy.items())
        assert metrics.counter(
            "csrplus_registry_shard_repairs_total", "x"
        ).value == 1
        assert metrics.counter("csrplus_registry_corrupt_total", "x").value == 1
        # single-shard repair is NOT a full rebuild
        assert metrics.counter("csrplus_registry_rebuilds_total", "x").value == 0

    def test_multiple_corrupt_shards_repaired_together(
        self, registry, graph, metrics
    ):
        built = _get(registry, graph)
        want = built.query_columns(SEEDS)
        built.close()
        registry.evict("cl100")

        path = registry.shard_store_path_for("cl100")
        _flip_byte(os.path.join(path, "shard-00000.u.npy"))
        _flip_byte(os.path.join(path, "shard-00003.z.npy"))
        repaired = _get(registry, graph)
        assert np.array_equal(repaired.query_columns(SEEDS), want)
        repaired.close()
        assert metrics.counter(
            "csrplus_registry_shard_repairs_total", "x"
        ).value == 2

    def test_missing_shard_file_repaired(self, registry, graph):
        built = _get(registry, graph)
        want = built.query_columns(SEEDS)
        built.close()
        registry.evict("cl100")

        path = registry.shard_store_path_for("cl100")
        os.remove(os.path.join(path, "shard-00001.z.npy"))
        repaired = _get(registry, graph)
        assert np.array_equal(repaired.query_columns(SEEDS), want)
        repaired.close()


class TestStoreLevelCorruption:
    def test_manifest_corruption_triggers_full_rebuild(
        self, registry, graph, metrics
    ):
        built = _get(registry, graph)
        want = built.query_columns(SEEDS)
        built.close()
        registry.evict("cl100")

        path = registry.shard_store_path_for("cl100")
        manifest = os.path.join(path, "manifest.json")
        with open(manifest, "a", encoding="utf-8") as handle:
            handle.write(" ")
        rebuilt = _get(registry, graph)
        assert np.array_equal(rebuilt.query_columns(SEEDS), want)
        rebuilt.close()
        assert metrics.counter("csrplus_registry_rebuilds_total", "x").value == 1
        # the damaged store was moved aside, not silently deleted
        assert os.path.exists(path + ".corrupt")
