"""Unit tests for shard layout planning and the store manifest."""

import json

import numpy as np
import pytest

from repro.errors import InvalidParameterError, ShardCorrupted
from repro.sharding import ShardManifest, ShardMeta, array_sha256, plan_shards
from repro.sharding.manifest import MANIFEST_VERSION


class TestPlanShards:
    def test_even_split(self):
        assert plan_shards(12, 4) == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_goes_to_leading_shards(self):
        assert plan_shards(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_single_shard(self):
        assert plan_shards(7, 1) == [(0, 7)]

    def test_more_shards_than_nodes_clamps(self):
        bounds = plan_shards(3, 10)
        assert bounds == [(0, 1), (1, 2), (2, 3)]

    def test_tiles_exactly_for_many_layouts(self):
        for n in (1, 2, 5, 17, 100, 257):
            for k in (1, 2, 3, 7, n, n + 5):
                bounds = plan_shards(n, k)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n
                for (_, b), (c, _) in zip(bounds, bounds[1:]):
                    assert b == c
                sizes = [b - a for a, b in bounds]
                assert max(sizes) - min(sizes) <= 1

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            plan_shards(0, 2)
        with pytest.raises(InvalidParameterError):
            plan_shards(5, 0)


class TestArraySha256:
    def test_container_free(self):
        """The digest covers the data bytes, not the .npy wrapper."""
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert array_sha256(a) == array_sha256(a.copy(order="F"))

    def test_sensitive_to_one_bit(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = a.copy()
        b[1, 2] = np.nextafter(b[1, 2], np.inf)
        assert array_sha256(a) != array_sha256(b)


def _manifest(n=10, k=3, rank=2):
    shards = []
    for i, (start, stop) in enumerate(plan_shards(n, k)):
        shards.append(
            ShardMeta(
                index=i,
                start=start,
                stop=stop,
                z_file=f"shard-{i:05d}.z.npy",
                u_file=f"shard-{i:05d}.u.npy",
                z_sha256="0" * 64,
                u_sha256="1" * 64,
            )
        )
    return ShardManifest(
        version=MANIFEST_VERSION,
        num_nodes=n,
        rank=rank,
        damping=0.6,
        epsilon=1e-8,
        dtype="float64",
        builder="from-index",
        stein_iterations=0,
        svd_seed=0,
        solver="squaring",
        dangling="zero",
        block_rows=0,
        shards=shards,
    )


class TestManifestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        manifest = _manifest()
        manifest.save(tmp_path)
        loaded = ShardManifest.load(tmp_path)
        assert loaded == manifest
        assert loaded.boundaries == plan_shards(10, 3)

    def test_sidecar_mismatch_is_store_level_corruption(self, tmp_path):
        _manifest().save(tmp_path)
        path = tmp_path / "manifest.json"
        path.write_text(path.read_text() + " ")
        with pytest.raises(ShardCorrupted) as excinfo:
            ShardManifest.load(tmp_path)
        assert excinfo.value.shard == -1

    def test_unparseable_json_is_corruption(self, tmp_path):
        _manifest().save(tmp_path)
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(ShardCorrupted):
            ShardManifest.load(tmp_path, check_sidecar=False)

    def test_unknown_version_rejected(self, tmp_path):
        _manifest().save(tmp_path)
        path = tmp_path / "manifest.json"
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ShardCorrupted):
            ShardManifest.load(tmp_path, check_sidecar=False)


class TestManifestValidate:
    def test_gap_between_shards_rejected(self):
        manifest = _manifest()
        bad = list(manifest.shards)
        bad[1] = ShardMeta(
            index=1, start=5, stop=7,  # shard 0 ends at 4
            z_file="z", u_file="u", z_sha256="0" * 64, u_sha256="1" * 64,
        )
        with pytest.raises(InvalidParameterError):
            ShardManifest(
                **{**manifest.__dict__, "shards": bad}
            ).validate()

    def test_wrong_total_rejected(self):
        manifest = _manifest(n=10, k=2)
        with pytest.raises(InvalidParameterError):
            ShardManifest(
                **{**manifest.__dict__, "num_nodes": 11}
            ).validate()

    def test_mislabelled_index_rejected(self):
        manifest = _manifest(n=10, k=2)
        bad = [manifest.shards[1], manifest.shards[0]]
        with pytest.raises(InvalidParameterError):
            ShardManifest(**{**manifest.__dict__, "shards": bad}).validate()
