"""CoSimRankService over a ShardedIndex backend.

The acceptance criterion for the subsystem: the serving layer's cache,
deadlines, retries, load shedding, and stats work *unchanged* when the
index underneath is a sharded store, and answers stay bit-identical to
the monolithic service.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import DeadlineExceeded, ServiceOverloaded
from repro.graphs.generators import chung_lu
from repro.serving import CoSimRankService
from repro.sharding import ShardedIndex, shard_index


@pytest.fixture(scope="module")
def graph():
    return chung_lu(150, 700, seed=41)


@pytest.fixture(scope="module")
def mono_index(graph):
    return CSRPlusIndex(graph, rank=5).prepare()


@pytest.fixture
def sharded(mono_index, tmp_path):
    store = shard_index(mono_index, tmp_path / "store", num_shards=4)
    with ShardedIndex(store, max_workers=2) as index:
        yield index


REQUESTS = [[0, 7, 33], [7, 149], [5], [0, 5, 7]]


class TestBitExactServing:
    def test_matches_monolithic_service(self, mono_index, sharded):
        with CoSimRankService(mono_index, max_workers=1) as mono_service:
            want = mono_service.serve_batch(REQUESTS)
        with CoSimRankService(sharded, max_workers=1) as service:
            got = service.serve_batch(REQUESTS)
        for a, b in zip(got, want):
            assert np.array_equal(a, b)

    def test_warm_cache_replays_identical_bytes(self, sharded):
        with CoSimRankService(sharded, max_workers=1) as service:
            cold = service.serve_batch(REQUESTS)
            warm = service.serve_batch(REQUESTS)
            stats = service.stats()
        for a, b in zip(cold, warm):
            assert np.array_equal(a, b)
        assert stats.hits > 0  # the second pass really was cache traffic

    def test_batched_mode_serves(self, mono_index, sharded):
        from repro.core.index import batched_query_atol

        with CoSimRankService(
            sharded, max_workers=1, query_mode="batched"
        ) as service:
            got = service.serve_batch([[0, 7, 33]])[0]
        want = mono_index.query_columns([0, 7, 33], mode="exact")
        atol = batched_query_atol(mono_index.config.rank, np.float64)
        np.testing.assert_allclose(got, want, rtol=0.0, atol=atol)

    def test_concurrent_clients(self, mono_index, sharded):
        """Thread-safety: shard fan-out inside, client threads outside."""
        import threading

        want = mono_index.query([0, 50, 100])
        errors = []

        with CoSimRankService(sharded, max_workers=2) as service:
            def client():
                try:
                    for _ in range(5):
                        got = service.query([0, 50, 100])
                        if not np.array_equal(got, want):  # pragma: no cover
                            errors.append("mismatch")
                except Exception as exc:  # pragma: no cover
                    errors.append(repr(exc))

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []


class TestRobustnessKnobs:
    def test_deadline_exceeded_is_typed(self, sharded):
        with CoSimRankService(sharded, max_workers=1) as service:
            with pytest.raises(DeadlineExceeded):
                service.serve_batch(REQUESTS, deadline_s=1e-12)

    def test_partial_degrades_with_none_holes(self, sharded):
        with CoSimRankService(sharded, max_workers=1) as service:
            results = service.serve_batch(
                REQUESTS, deadline_s=1e-12, partial=True
            )
        assert any(block is None for block in results)

    def test_load_shedding(self, sharded):
        with CoSimRankService(
            sharded, max_workers=1, max_inflight_seeds=1
        ) as service:
            with pytest.raises(ServiceOverloaded):
                service.serve_batch([[0, 1, 2, 3, 4]])

    def test_cache_validate_serves_correctly(self, mono_index, sharded):
        with CoSimRankService(
            sharded, max_workers=1, cache_validate=True
        ) as service:
            service.serve_batch(REQUESTS)
            warm = service.serve_batch(REQUESTS)
        with CoSimRankService(mono_index, max_workers=1) as mono_service:
            want = mono_service.serve_batch(REQUESTS)
        for a, b in zip(warm, want):
            assert np.array_equal(a, b)
