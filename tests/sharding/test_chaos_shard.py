"""Chaos suite for the ``shard.read`` seam.

Contract (docs/sharding.md, docs/robustness.md): a poisoned or flaky
shard is either *retried cleanly* or surfaces as a *typed*
:class:`~repro.errors.ShardCorrupted` — never as silently wrong rows,
never as a bare exception, never as a hang.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import ReproError, ShardCorrupted
from repro.graphs.generators import erdos_renyi
from repro.obs.metrics import MetricsRegistry
from repro.serving import CoSimRankService
from repro.sharding import ShardedIndex, shard_index
from repro.testing.faults import FaultPlan

pytestmark = pytest.mark.chaos


@pytest.fixture
def graph():
    return erdos_renyi(60, 260, seed=31)


@pytest.fixture
def mono_index(graph):
    return CSRPlusIndex(graph, rank=4).prepare()


@pytest.fixture
def store(mono_index, tmp_path):
    return shard_index(mono_index, tmp_path / "store", num_shards=3)


SEEDS = [0, 25, 59]


def _poison(pair):
    """Corrupt the Z block of a loaded shard without changing its shape."""
    z, u = pair
    bad = np.array(z)
    bad[0, 0] += 1.0
    return bad, u


class TestReadFailures:
    def test_transient_failure_retried_cleanly(self, mono_index, store):
        metrics = MetricsRegistry()
        want = mono_index.query_columns(SEEDS)
        with FaultPlan().fail(
            "shard.read", times=1, exc=OSError("flaky disk")
        ) as plan:
            with ShardedIndex(store, max_workers=1, metrics=metrics) as idx:
                got = idx.query_columns(SEEDS)
        assert plan.injected("shard.read") == 1
        assert np.array_equal(got, want)  # the retry rebuilt exact bytes
        assert (
            metrics.counter("csrplus_shard_read_retries_total", "x").value == 1
        )
        assert (
            metrics.counter("csrplus_shard_read_failures_total", "x").value == 0
        )

    def test_persistent_failure_is_typed(self, store):
        metrics = MetricsRegistry()
        with FaultPlan().fail("shard.read", times=None):
            with ShardedIndex(store, max_workers=1, metrics=metrics) as idx:
                with pytest.raises(ShardCorrupted) as excinfo:
                    idx.query_columns(SEEDS)
        assert isinstance(excinfo.value, ReproError)
        assert (
            metrics.counter("csrplus_shard_read_failures_total", "x").value >= 1
        )

    def test_targeted_failure_names_the_shard(self, store):
        with FaultPlan().fail(
            "shard.read", times=None, when=lambda ctx: ctx["shard"] == 2
        ):
            with ShardedIndex(
                store, max_workers=1, read_retries=0
            ) as idx:
                with pytest.raises(ShardCorrupted) as excinfo:
                    idx.query_columns(SEEDS)
        assert excinfo.value.shard == 2

    def test_retry_budget_zero_fails_fast(self, store):
        metrics = MetricsRegistry()
        with FaultPlan().fail("shard.read", times=1) as plan:
            with ShardedIndex(
                store, max_workers=1, read_retries=0, metrics=metrics
            ) as idx:
                with pytest.raises(ShardCorrupted):
                    idx.query_columns(SEEDS)
        assert plan.injected("shard.read") == 1
        assert (
            metrics.counter("csrplus_shard_read_retries_total", "x").value == 0
        )


class TestLatency:
    def test_slow_shard_changes_nothing(self, mono_index, store):
        """Latency injection exercises the fan-out's wait paths."""
        sleeps = []
        want = mono_index.query_columns(SEEDS)
        with FaultPlan(sleep=sleeps.append).delay(
            "shard.read", seconds=0.5, times=2
        ) as plan:
            with ShardedIndex(store, max_workers=3) as idx:
                got = idx.query_columns(SEEDS)
        assert plan.injected("shard.read") == 2
        assert sleeps == [0.5, 0.5]
        assert np.array_equal(got, want)


class TestCorruption:
    def test_validated_reads_detect_poison(self, store):
        """validate_reads re-hashes against the manifest: a poisoned
        shard raises typed, it is never served."""
        with FaultPlan().corrupt("shard.read", _poison, times=None):
            with ShardedIndex(
                store, max_workers=1, validate_reads=True, read_retries=0
            ) as idx:
                with pytest.raises(ShardCorrupted):
                    idx.query_columns(SEEDS)

    def test_one_shot_poison_retries_to_exact_bytes(self, mono_index, store):
        """A transient corruption costs one retry, not correctness."""
        metrics = MetricsRegistry()
        want = mono_index.query_columns(SEEDS)
        with FaultPlan().corrupt("shard.read", _poison, times=1) as plan:
            with ShardedIndex(
                store, max_workers=1, validate_reads=True, metrics=metrics
            ) as idx:
                got = idx.query_columns(SEEDS)
        assert plan.injected("shard.read") == 1
        assert np.array_equal(got, want)
        assert (
            metrics.counter("csrplus_shard_read_retries_total", "x").value == 1
        )

    def test_shape_corruption_detected_even_without_validation(self, store):
        """Structural damage fails the always-on shape/dtype check."""

        def truncate(pair):
            z, u = pair
            return z[:-1, :], u

        with FaultPlan().corrupt("shard.read", truncate, times=None):
            with ShardedIndex(store, max_workers=1, read_retries=0) as idx:
                with pytest.raises(ShardCorrupted):
                    idx.query_columns(SEEDS)


class TestUnderService:
    def test_poisoned_shard_surfaces_typed_through_service(self, store):
        """The serving layer's per-request isolation turns the shard
        error into a typed per-request outcome, not a crash."""
        with FaultPlan().corrupt("shard.read", _poison, times=None):
            with ShardedIndex(
                store, max_workers=1, validate_reads=True, read_retries=0
            ) as idx:
                with CoSimRankService(idx, max_workers=1) as service:
                    detailed = service.serve_batch_detailed([SEEDS])
        outcome = detailed.outcomes[0]
        assert outcome.error is not None
        assert isinstance(outcome.error, ReproError)

    def test_transient_fault_invisible_to_clients(self, mono_index, store):
        with CoSimRankService(mono_index, max_workers=1) as mono_service:
            want = mono_service.serve_batch([SEEDS])[0]
        with FaultPlan().fail("shard.read", times=1):
            with ShardedIndex(store, max_workers=1) as idx:
                with CoSimRankService(idx, max_workers=1) as service:
                    got = service.serve_batch([SEEDS])[0]
        assert np.array_equal(got, want)
