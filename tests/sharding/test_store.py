"""Unit tests for the shard store: writer, reader, integrity, repair."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, ShardCorrupted
from repro.graphs.generators import erdos_renyi
from repro.sharding import ShardStore, ShardStoreWriter, plan_shards, shard_index


@pytest.fixture
def graph():
    return erdos_renyi(50, 220, seed=3)


@pytest.fixture
def index(graph):
    return CSRPlusIndex(graph, rank=4).prepare()


@pytest.fixture
def store(index, tmp_path):
    return shard_index(index, tmp_path / "store", num_shards=3)


class TestShardIndex:
    def test_shards_hold_exact_factor_bytes(self, index, store):
        u_matrix, _, _, z_matrix = index.factors
        for i, (start, stop) in enumerate(store.boundaries):
            shard = store.load_shard(i, mmap=False)
            assert np.array_equal(shard.z, z_matrix[start:stop, :])
            assert np.array_equal(shard.u, u_matrix[start:stop, :])
            assert shard.z.dtype == z_matrix.dtype

    def test_manifest_records_index_parameters(self, index, store):
        manifest = store.manifest
        assert manifest.builder == "from-index"
        assert manifest.rank == index.config.rank
        assert manifest.damping == index.config.damping
        assert manifest.svd_seed == index.config.svd_seed
        assert manifest.solver == index.config.solver
        assert manifest.stein_iterations == index.stein_iterations

    def test_refuses_unprepared_index(self, graph, tmp_path):
        from repro.errors import NotPreparedError

        with pytest.raises(NotPreparedError):
            shard_index(CSRPlusIndex(graph, rank=4), tmp_path, num_shards=2)

    def test_existing_store_needs_overwrite(self, index, store, tmp_path):
        with pytest.raises(InvalidParameterError):
            shard_index(index, store.path, num_shards=3)
        replaced = shard_index(index, store.path, num_shards=2, overwrite=True)
        assert replaced.num_shards == 2


class TestWriter:
    def test_finalize_requires_every_shard(self, tmp_path):
        writer = ShardStoreWriter(
            tmp_path / "w",
            plan_shards(6, 2),
            rank=2, damping=0.6, epsilon=1e-8,
            dtype="float64", builder="from-index",
        )
        writer.write_shard(0, np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(InvalidParameterError) as excinfo:
            writer.finalize()
        assert "[1]" in str(excinfo.value)

    def test_rejects_wrong_shape_and_dtype(self, tmp_path):
        writer = ShardStoreWriter(
            tmp_path / "w",
            plan_shards(6, 2),
            rank=2, damping=0.6, epsilon=1e-8,
            dtype="float64", builder="from-index",
        )
        with pytest.raises(InvalidParameterError):
            writer.write_shard(0, np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(InvalidParameterError):
            writer.write_shard(
                0, np.zeros((3, 2), np.float32), np.zeros((3, 2), np.float32)
            )

    def test_crashed_build_leaves_no_openable_store(self, tmp_path):
        writer = ShardStoreWriter(
            tmp_path / "w",
            plan_shards(6, 2),
            rank=2, damping=0.6, epsilon=1e-8,
            dtype="float64", builder="from-index",
        )
        writer.write_shard(0, np.zeros((3, 2)), np.zeros((3, 2)))
        # no finalize(): no manifest, so the partial store does not open
        with pytest.raises(OSError):
            ShardStore(tmp_path / "w")


class TestIntegrity:
    @staticmethod
    def _flip_byte(path, offset=-9):
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_verify_shard_catches_disk_corruption(self, store, tmp_path):
        z_path, _ = store.shard_paths(1)
        self._flip_byte(tmp_path / "store" / z_path.split("/")[-1])
        store.verify_shard(0)  # neighbours unaffected
        with pytest.raises(ShardCorrupted) as excinfo:
            store.verify_shard(1)
        assert excinfo.value.shard == 1

    def test_load_without_validate_trusts_bytes(self, store, tmp_path):
        """mmap-friendly default: digests are not recomputed per load."""
        z_path, _ = store.shard_paths(1)
        self._flip_byte(tmp_path / "store" / z_path.split("/")[-1])
        store.load_shard(1)  # no error: shape/dtype still match
        with pytest.raises(ShardCorrupted):
            store.load_shard(1, validate=True)

    def test_open_with_hashes_fsck(self, index, tmp_path):
        store = shard_index(index, tmp_path / "s", num_shards=3)
        ShardStore(store.path, verify="hashes")  # clean store passes
        z_path, _ = store.shard_paths(2)
        self._flip_byte(tmp_path / "s" / z_path.split("/")[-1])
        with pytest.raises(ShardCorrupted):
            ShardStore(store.path, verify="hashes")

    def test_quarantine_moves_both_files(self, store):
        import os

        z_path, u_path = store.shard_paths(0)
        store.quarantine_shard(0)
        assert not os.path.exists(z_path)
        assert not os.path.exists(u_path)
        assert os.path.exists(z_path + ".corrupt")
        assert os.path.exists(u_path + ".corrupt")

    def test_truncated_shard_file_is_shape_corruption(self, store, tmp_path):
        """A wrong-shaped file fails the always-on structural check."""
        z_path, _ = store.shard_paths(0)
        np.save(z_path, np.zeros((1, store.manifest.rank)))
        with pytest.raises(ShardCorrupted):
            store.load_shard(0)


class TestRebuild:
    def test_rebuild_reproduces_exact_bytes(self, graph, index, tmp_path):
        from repro.sharding import rebuild_shards

        store = shard_index(index, tmp_path / "s", num_shards=4)
        originals = {
            i: store.load_shard(i, mmap=False) for i in range(store.num_shards)
        }
        store.quarantine_shard(2)
        assert rebuild_shards(graph, store.path, [2]) == [2]
        rebuilt = store.load_shard(2, mmap=False)
        assert np.array_equal(rebuilt.z, originals[2].z)
        assert np.array_equal(rebuilt.u, originals[2].u)
        # and the untouched shard digests still verify
        for i in range(store.num_shards):
            store.verify_shard(i)

    def test_rebuild_against_wrong_graph_refuses(self, index, tmp_path):
        from repro.sharding import rebuild_shards

        store = shard_index(index, tmp_path / "s", num_shards=3)
        other = erdos_renyi(50, 220, seed=99)  # same size, different edges
        with pytest.raises(ShardCorrupted):
            rebuild_shards(other, store.path, [1])
