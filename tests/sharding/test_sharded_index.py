"""ShardedIndex and ShardRouter: routing, fan-out, exactness, metrics."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.errors import InvalidParameterError, QueryError
from repro.graphs.generators import chung_lu, erdos_renyi
from repro.obs.metrics import MetricsRegistry
from repro.sharding import ShardedIndex, ShardRouter, shard_index


@pytest.fixture
def graph():
    return erdos_renyi(80, 350, seed=19)


@pytest.fixture
def index(graph):
    return CSRPlusIndex(graph, rank=5).prepare()


@pytest.fixture
def store(index, tmp_path):
    return shard_index(index, tmp_path / "store", num_shards=4)


class TestRouter:
    def test_shard_of_respects_boundaries(self):
        router = ShardRouter([(0, 3), (3, 7), (7, 10)])
        assert [router.shard_of(i) for i in range(10)] == [
            0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
        ]

    def test_plan_preserves_duplicates_and_order(self):
        router = ShardRouter([(0, 5), (5, 10)])
        routed = router.plan([7, 2, 7])
        assert routed.seed_ids.tolist() == [7, 2, 7]
        assert routed.owners.tolist() == [1, 0, 1]
        assert routed.local_rows.tolist() == [2, 2, 2]
        assert sorted(routed.gather_shards) == [0, 1]

    def test_plan_rejects_out_of_range(self):
        router = ShardRouter([(0, 5)])
        with pytest.raises(QueryError):
            router.plan([5])
        with pytest.raises(QueryError):
            router.plan([-1])

    def test_non_contiguous_boundaries_rejected(self):
        with pytest.raises(InvalidParameterError):
            ShardRouter([(0, 3), (4, 6)])


class TestExactEquivalence:
    def test_bit_identical_serial_and_parallel(self, index, store):
        seeds = [0, 1, 41, 79]
        want = index.query_columns(seeds)
        with ShardedIndex(store, max_workers=1) as serial:
            assert np.array_equal(serial.query_columns(seeds), want)
        with ShardedIndex(store, max_workers=4) as pooled:
            assert np.array_equal(pooled.query_columns(seeds), want)

    def test_batched_mode_within_atol(self, index, store):
        seeds = [3, 60, 61]
        want = index.query_columns(seeds, mode="exact")
        with ShardedIndex(store) as sharded:
            got = sharded.query_columns(seeds, mode="batched")
        atol = batched_query_atol(index.config.rank, np.float64)
        np.testing.assert_allclose(got, want, rtol=0.0, atol=atol)

    def test_query_mirrors_monolithic_query(self, index, store):
        request = [5, 5, 2, 70]  # duplicates preserved
        with ShardedIndex(store, max_workers=2) as sharded:
            assert np.array_equal(sharded.query(request), index.query(request))

    def test_empty_seed_list(self, store):
        with ShardedIndex(store) as sharded:
            out = sharded.query_columns([])
        assert out.shape == (sharded.num_nodes, 0)

    def test_mmap_and_full_reads_agree(self, index, store):
        seeds = [10, 50]
        with ShardedIndex(store, mmap=True) as a:
            with ShardedIndex(store, mmap=False) as b:
                assert np.array_equal(
                    a.query_columns(seeds), b.query_columns(seeds)
                )


class TestServiceSurface:
    def test_backend_contract(self, store):
        with ShardedIndex(store) as sharded:
            assert sharded.prepare() is sharded
            assert sharded.num_nodes == 80
            assert sharded.dtype == np.float64
            assert sharded.config.query_mode == "exact"

    def test_invalid_parameters(self, store):
        with pytest.raises(InvalidParameterError):
            ShardedIndex(store, query_mode="nope")
        with pytest.raises(InvalidParameterError):
            ShardedIndex(store, max_workers=0)
        with pytest.raises(InvalidParameterError):
            ShardedIndex(store, read_retries=-1)

    def test_closed_index_refuses_fanout(self, store):
        sharded = ShardedIndex(store, max_workers=2)
        sharded.close()
        with pytest.raises(InvalidParameterError):
            sharded.query_columns([0, 1])


class TestShardCacheAndMetrics:
    def test_shards_load_once_and_drop(self, store):
        metrics = MetricsRegistry()
        with ShardedIndex(store, max_workers=1, metrics=metrics) as sharded:
            sharded.query_columns([0])
            loads_cold = metrics.counter("csrplus_shard_loads_total", "x").value
            assert loads_cold == store.num_shards  # all output blocks
            assert sharded.resident_shards() == store.num_shards
            sharded.query_columns([1, 2])
            assert (
                metrics.counter("csrplus_shard_loads_total", "x").value
                == loads_cold  # cache hit: no re-reads
            )
            sharded.drop_shard_cache()
            assert sharded.resident_shards() == 0
            sharded.query_columns([3])
            assert (
                metrics.counter("csrplus_shard_loads_total", "x").value
                == 2 * loads_cold
            )

    def test_query_counters(self, store):
        metrics = MetricsRegistry()
        with ShardedIndex(store, max_workers=2, metrics=metrics) as sharded:
            sharded.query_columns([0, 9, 33])
        assert metrics.counter("csrplus_shard_queries_total", "x").value == 1
        assert metrics.counter("csrplus_shard_columns_total", "x").value == 3
        assert (
            metrics.counter("csrplus_shard_tasks_total", "x").value
            == store.num_shards
        )
        assert metrics.gauge("csrplus_shard_count", "x").value == 4

    def test_spans_nest_under_query(self, store):
        import repro.obs as obs
        from repro.obs.tracing import Tracer

        tracer = Tracer()
        previous = obs.set_enabled(True)
        try:
            with ShardedIndex(store, max_workers=4, tracer=tracer) as sharded:
                sharded.query_columns([0, 45])
        finally:
            obs.set_enabled(previous)
        roots = tracer.as_dict()["spans"]
        query_roots = [s for s in roots if s["name"] == "shard.query"]
        assert len(query_roots) == 1
        children = {c["name"] for c in query_roots[0]["children"]}
        assert "shard.query.block" in children
        blocks = [
            c for c in query_roots[0]["children"]
            if c["name"] == "shard.query.block"
        ]
        assert len(blocks) == store.num_shards  # none became orphan roots


class TestDtypeAndLayouts:
    @pytest.mark.parametrize("num_shards", [1, 2, 7, 80])
    def test_every_layout_is_exact(self, index, tmp_path, num_shards):
        store = shard_index(
            index, tmp_path / f"s{num_shards}", num_shards=num_shards
        )
        seeds = [0, 39, 79]
        with ShardedIndex(store, max_workers=2) as sharded:
            assert np.array_equal(
                sharded.query_columns(seeds), index.query_columns(seeds)
            )

    def test_float32_round_trip(self, tmp_path):
        graph = chung_lu(90, 400, seed=2)
        index = CSRPlusIndex(graph, rank=4, dtype="float32").prepare()
        store = shard_index(index, tmp_path / "s", num_shards=3)
        with ShardedIndex(store) as sharded:
            assert sharded.dtype == np.float32
            got = sharded.query_columns([0, 88])
            assert got.dtype == np.float32
            assert np.array_equal(got, index.query_columns([0, 88]))
