"""Out-of-core builder: equivalence, memory accounting, determinism."""

import numpy as np
import pytest

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.core.memory import MemoryMeter
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu, erdos_renyi, ring
from repro.linalg.svd import uses_dense_fallback
from repro.sharding import ShardedIndex, build_sharded_store


class TestDensePathFidelity:
    """Below the dense-SVD threshold the builder mirrors prepare()."""

    def test_shards_are_byte_identical_to_prepare(self, tmp_path):
        graph = ring(40)
        config = CSRPlusConfig(rank=4)
        assert uses_dense_fallback((40, 40), 4)
        index = CSRPlusIndex(graph, config).prepare()
        u_matrix, _, _, z_matrix = index.factors
        store = build_sharded_store(
            graph, tmp_path / "s", num_shards=3, config=config
        )
        assert store.manifest.builder == "out-of-core"
        for i, (start, stop) in enumerate(store.boundaries):
            shard = store.load_shard(i, mmap=False)
            assert np.array_equal(shard.z, z_matrix[start:stop, :])
            assert np.array_equal(shard.u, u_matrix[start:stop, :])


class TestStreamingPathEquivalence:
    """Above the threshold (ARPACK path) the contract is tolerance."""

    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(300, 1500, seed=7)

    def test_queries_within_batched_atol_of_monolithic(self, graph, tmp_path):
        config = CSRPlusConfig(rank=6)
        assert not uses_dense_fallback((300, 300), 6)
        index = CSRPlusIndex(graph, config).prepare()
        store = build_sharded_store(
            graph, tmp_path / "s", num_shards=4, config=config
        )
        with ShardedIndex(store, max_workers=1) as sharded:
            seeds = [0, 17, 150, 299]
            got = sharded.query_columns(seeds)
            want = index.query_columns(seeds)
            atol = batched_query_atol(config.rank, np.float64)
            np.testing.assert_allclose(got, want, rtol=0.0, atol=atol)

    def test_build_is_deterministic(self, graph, tmp_path):
        """Same graph + config => byte-identical stores (repair relies
        on this)."""
        kwargs = dict(num_shards=3, config=CSRPlusConfig(rank=5))
        a = build_sharded_store(graph, tmp_path / "a", **kwargs)
        b = build_sharded_store(graph, tmp_path / "b", **kwargs)
        for meta_a, meta_b in zip(a.manifest.shards, b.manifest.shards):
            assert meta_a.z_sha256 == meta_b.z_sha256
            assert meta_a.u_sha256 == meta_b.u_sha256

    def test_block_rows_recorded_for_deterministic_rebuild(
        self, graph, tmp_path
    ):
        """Blockwise H accumulation is partition-dependent in floating
        point, so the manifest must record the height and repair must
        replay it."""
        from repro.sharding import rebuild_shards

        store = build_sharded_store(
            graph, tmp_path / "s", num_shards=3,
            config=CSRPlusConfig(rank=5), block_rows=17,
        )
        assert store.manifest.block_rows == 17
        store.quarantine_shard(1)
        assert rebuild_shards(graph, store.path, [1]) == [1]
        store.verify_shard(1)  # rebuilt bytes match the manifest digest

    def test_block_rows_stays_within_tolerance(self, graph, tmp_path):
        """Different heights shift bits, never past the documented atol."""
        config = CSRPlusConfig(rank=5)
        index = CSRPlusIndex(graph, config).prepare()
        atol = batched_query_atol(config.rank, np.float64)
        seeds = [0, 123, 299]
        want = index.query_columns(seeds)
        for label, height in (("a", 17), ("b", 300)):
            store = build_sharded_store(
                graph, tmp_path / label, num_shards=3,
                config=config, block_rows=height,
            )
            with ShardedIndex(store, max_workers=1) as sharded:
                np.testing.assert_allclose(
                    sharded.query_columns(seeds), want, rtol=0.0, atol=atol
                )


class TestMemoryAccounting:
    def test_ledger_charges_shards_individually(self, tmp_path):
        graph = chung_lu(300, 1500, seed=7)
        meter = MemoryMeter()
        build_sharded_store(
            graph, tmp_path / "s", num_shards=4,
            config=CSRPlusConfig(rank=5), memory=meter,
        )
        peaks = meter.high_water_breakdown()
        assert any(label.startswith("shard/z-block-") for label in peaks)
        assert "shard/U" in peaks
        # transient charges were released: nothing stays resident
        assert meter.current_bytes == 0

    def test_peak_well_below_full_factors(self, tmp_path):
        """The point of the subsystem: never 2 x n x r resident.

        Rank is chosen high enough that the factors dominate the
        (unavoidable, both-paths) sparse ``Q`` charge.
        """
        n, rank, shards = 1024, 32, 4
        graph = chung_lu(n, 5000, seed=13)
        meter = MemoryMeter()
        build_sharded_store(
            graph, tmp_path / "s", num_shards=shards,
            config=CSRPlusConfig(rank=rank), memory=meter,
        )
        both_factors = 2 * n * rank * 8
        assert meter.peak_bytes < both_factors

    def test_float32_store_halves_shard_bytes(self, tmp_path):
        graph = chung_lu(200, 900, seed=5)
        meter = MemoryMeter()
        store = build_sharded_store(
            graph, tmp_path / "s", num_shards=2,
            config=CSRPlusConfig(rank=4, dtype="float32"), memory=meter,
        )
        shard = store.load_shard(0, mmap=False)
        assert shard.z.dtype == np.float32
        assert shard.u.dtype == np.float32


class TestBuilderValidation:
    def test_rank_above_n_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            build_sharded_store(
                ring(5), tmp_path / "s", num_shards=2,
                config=CSRPlusConfig(rank=9),
            )

    def test_bad_block_rows_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            build_sharded_store(
                erdos_renyi(30, 100, seed=1), tmp_path / "s",
                num_shards=2, block_rows=0,
            )

    def test_overrides_forwarded_to_config(self, tmp_path):
        store = build_sharded_store(
            ring(30), tmp_path / "s", num_shards=2, rank=3, damping=0.7
        )
        assert store.manifest.rank == 3
        assert store.manifest.damping == 0.7
