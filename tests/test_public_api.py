"""The advertised public API resolves and stays stable."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graphs",
    "repro.linalg",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.datasets",
    "repro.experiments",
    "repro.applications",
    "repro.serving",
    "repro.sharding",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_surface():
    import repro

    # the names the README quickstart relies on
    for name in (
        "CSRPlusIndex",
        "CSRPlusConfig",
        "DynamicCSRPlus",
        "DiGraph",
        "WeightedDiGraph",
        "suggest_rank",
        "cosimrank_multi_source",
        "MemoryBudgetExceeded",
        "CoSimRankService",
        "IndexRegistry",
        "ServingStats",
    ):
        assert hasattr(repro, name)
    assert repro.__version__ == "1.0.0"


def test_every_module_has_docstring():
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name


def test_engine_classes_have_docstrings():
    from repro.baselines.registry import engine_names, make_engine
    from repro.graphs.generators import ring

    graph = ring(4)
    for name in engine_names():
        engine = make_engine(name, graph, rank=2)
        assert type(engine).__doc__, name
        assert engine.name == name
