"""Unit tests for the deterministic truncated SVD."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import InvalidParameterError
from repro.graphs.transition import transition_matrix
from repro.linalg.svd import TruncatedSVD, truncated_svd


def _random_sparse(n, density, seed):
    rng = np.random.default_rng(seed)
    matrix = sparse.random(
        n, n, density=density, random_state=np.random.RandomState(seed)
    )
    return matrix.tocsr()


class TestCorrectness:
    def test_full_rank_reconstructs(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((12, 12))
        svd = truncated_svd(matrix, 12)
        np.testing.assert_allclose(svd.reconstruct(), matrix, atol=1e-10)

    def test_singular_values_match_lapack(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((20, 20))
        svd = truncated_svd(matrix, 5)
        reference = np.linalg.svd(matrix, compute_uv=False)[:5]
        np.testing.assert_allclose(svd.sigma, reference, rtol=1e-10)

    def test_descending_order(self):
        matrix = _random_sparse(200, 0.05, 3)
        svd = truncated_svd(matrix, 6)
        assert np.all(np.diff(svd.sigma) <= 1e-12)

    def test_orthonormal_factors(self):
        matrix = _random_sparse(150, 0.05, 4)
        svd = truncated_svd(matrix, 8)
        np.testing.assert_allclose(svd.u.T @ svd.u, np.eye(8), atol=1e-8)
        np.testing.assert_allclose(svd.v.T @ svd.v, np.eye(8), atol=1e-8)

    def test_sparse_path_matches_dense_path(self):
        matrix = _random_sparse(150, 0.05, 5)
        via_arpack = truncated_svd(matrix, 4)
        via_dense = truncated_svd(matrix.toarray(), 4)
        # both paths pick the same subspace; compare the projection
        np.testing.assert_allclose(via_arpack.sigma, via_dense.sigma, rtol=1e-8)
        np.testing.assert_allclose(
            via_arpack.reconstruct(), via_dense.reconstruct(), atol=1e-8
        )

    def test_best_rank_r_error_bound(self):
        """Eckart-Young: the rank-r SVD residual equals sigma_{r+1}."""
        rng = np.random.default_rng(6)
        matrix = rng.standard_normal((30, 30))
        svd = truncated_svd(matrix, 10)
        residual = np.linalg.norm(matrix - svd.reconstruct(), ord=2)
        all_sigma = np.linalg.svd(matrix, compute_uv=False)
        assert residual == pytest.approx(all_sigma[10], rel=1e-8)


class TestDeterminism:
    def test_repeated_calls_identical(self):
        matrix = _random_sparse(300, 0.02, 7)
        first = truncated_svd(matrix, 5, seed=1)
        second = truncated_svd(matrix, 5, seed=1)
        np.testing.assert_array_equal(first.u, second.u)
        np.testing.assert_array_equal(first.v, second.v)

    def test_sign_canonicalisation(self):
        matrix = _random_sparse(100, 0.05, 8)
        svd = truncated_svd(matrix, 4)
        pivots = np.abs(svd.u).argmax(axis=0)
        signs = svd.u[pivots, np.arange(4)]
        assert np.all(signs > 0)


class TestValidation:
    def test_rank_zero_rejected(self):
        with pytest.raises(InvalidParameterError):
            truncated_svd(np.eye(4), 0)

    def test_rank_too_large_rejected(self):
        with pytest.raises(InvalidParameterError):
            truncated_svd(np.eye(4), 5)

    def test_non_2d_rejected(self):
        with pytest.raises(InvalidParameterError):
            truncated_svd(np.zeros(5), 1)

    def test_nbytes(self):
        svd = truncated_svd(np.eye(10), 3)
        assert svd.nbytes() == svd.u.nbytes + svd.sigma.nbytes + svd.v.nbytes
        assert svd.rank == 3


class TestOnTransitionMatrices:
    def test_spectral_norm_at_most_sqrt_max_indegree_bound(self, small_powerlaw):
        """For a column-substochastic Q, sigma_1 is bounded and finite."""
        q_matrix = transition_matrix(small_powerlaw)
        svd = truncated_svd(q_matrix, 3)
        # sigma_1^2 <= ||Q||_1 * ||Q||_inf  (Schur bound)
        norm_1 = abs(q_matrix).sum(axis=0).max()
        norm_inf = abs(q_matrix).sum(axis=1).max()
        assert svd.sigma[0] ** 2 <= norm_1 * norm_inf + 1e-9
