"""Unit tests for the sparse helpers backing the budget pre-flight checks."""

import numpy as np
import pytest
from scipy import sparse

from repro.graphs.generators import chung_lu, erdos_renyi
from repro.graphs.transition import transition_matrix
from repro.linalg.sparse_utils import (
    densify_small,
    sparse_bytes_for_nnz,
    spmm_nnz_upper_bound,
)


class TestNnzUpperBound:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bound_dominates_actual(self, seed):
        graph = erdos_renyi(80, 400, seed=seed)
        q = transition_matrix(graph)
        bound = spmm_nnz_upper_bound(q, q)
        actual = (q @ q).nnz
        assert bound >= actual

    def test_bound_on_powerlaw_products(self):
        graph = chung_lu(200, 1200, seed=4)
        q = transition_matrix(graph)
        s = sparse.identity(200, format="csr")
        for _ in range(3):
            bound = spmm_nnz_upper_bound(q.T.tocsr(), s)
            product = q.T.tocsr() @ s
            assert bound >= product.nnz
            s = (product @ q).tocsr()

    def test_exact_for_diagonal(self):
        d = sparse.identity(10, format="csr")
        assert spmm_nnz_upper_bound(d, d) == 10

    def test_zero_matrices(self):
        z = sparse.csr_matrix((5, 5))
        assert spmm_nnz_upper_bound(z, z) == 0


class TestBytesForNnz:
    def test_default_layout(self):
        assert sparse_bytes_for_nnz(100) == 1200  # 4B index + 8B value

    def test_custom_layout(self):
        assert sparse_bytes_for_nnz(10, index_bytes=8, value_bytes=8) == 160


class TestDensifySmall:
    def test_small_becomes_dense(self):
        matrix = sparse.identity(5, format="csr")
        out = densify_small(matrix)
        assert isinstance(out, np.ndarray)

    def test_large_stays_sparse(self):
        matrix = sparse.identity(100, format="csr")
        out = densify_small(matrix, max_elements=50)
        assert sparse.issparse(out)
