"""Unit tests for the Stein-equation solvers."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, InvalidParameterError
from repro.linalg.stein import (
    fixed_point_iteration_count,
    solve_stein_direct,
    solve_stein_fixed_point,
    solve_stein_squaring,
    squaring_iteration_count,
)


def _contraction(r, seed, norm=0.9):
    """A random matrix scaled to spectral norm ``norm`` (< 1/sqrt(c))."""
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((r, r))
    return h * (norm / np.linalg.norm(h, ord=2))


class TestIterationCounts:
    def test_paper_example(self):
        # c = 0.6, eps = 1e-5: log_c eps ~ 22.5, log2 ~ 4.49 -> 5
        assert squaring_iteration_count(0.6, 1e-5) == 5

    def test_squaring_much_smaller_than_fixed_point(self):
        for c in (0.4, 0.6, 0.8):
            for eps in (1e-3, 1e-6, 1e-9):
                k_sq = squaring_iteration_count(c, eps)
                k_fp = fixed_point_iteration_count(c, eps)
                assert 2 ** (k_sq + 1) >= k_fp
                assert k_sq < k_fp

    def test_fixed_point_count_definition(self):
        k = fixed_point_iteration_count(0.6, 1e-5)
        assert 0.6**k < 1e-5 <= 0.6 ** (k - 1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            squaring_iteration_count(1.0, 1e-5)
        with pytest.raises(InvalidParameterError):
            squaring_iteration_count(0.6, 0.0)
        with pytest.raises(InvalidParameterError):
            fixed_point_iteration_count(0.0, 1e-5)


class TestSolverAgreement:
    @pytest.mark.parametrize("c", [0.4, 0.6, 0.8])
    def test_three_solvers_agree(self, c):
        h = _contraction(8, seed=1)
        direct = solve_stein_direct(h, c)
        fixed, _ = solve_stein_fixed_point(h, c, epsilon=1e-12)
        squared, _ = solve_stein_squaring(h, c, epsilon=1e-12)
        np.testing.assert_allclose(fixed, direct, atol=1e-9)
        np.testing.assert_allclose(squared, direct, atol=1e-9)

    def test_solution_satisfies_equation(self):
        h = _contraction(6, seed=2)
        c = 0.6
        p = solve_stein_direct(h, c)
        np.testing.assert_allclose(p, c * h @ p @ h.T + np.eye(6), atol=1e-10)

    def test_squaring_respects_paper_bound(self):
        """After the paper's iteration count, ||P_k - P||_max < eps."""
        h = _contraction(5, seed=3, norm=1.0)
        for eps in (1e-3, 1e-5, 1e-8):
            p_exact = solve_stein_direct(h, 0.6)
            p_approx, _ = solve_stein_squaring(h, 0.6, epsilon=eps)
            assert np.max(np.abs(p_approx - p_exact)) < eps

    def test_symmetric_solution(self):
        """P = sum c^j H^j (H^j)^T is symmetric positive definite."""
        h = _contraction(7, seed=4)
        p = solve_stein_direct(h, 0.6)
        np.testing.assert_allclose(p, p.T, atol=1e-10)
        assert np.all(np.linalg.eigvalsh(p) > 0)

    def test_identity_h(self):
        """H = I gives P = I / (1 - c)."""
        p, _ = solve_stein_squaring(np.eye(4), 0.5, epsilon=1e-14)
        np.testing.assert_allclose(p, np.eye(4) * 2.0, atol=1e-10)

    def test_zero_h(self):
        p, _ = solve_stein_squaring(np.zeros((3, 3)), 0.6)
        np.testing.assert_allclose(p, np.eye(3))


class _MatmulCounter(np.ndarray):
    """ndarray that counts every ``@`` it participates in."""

    count = [0]  # shared mutable cell; survives views/copies

    def __matmul__(self, other):
        type(self).count[0] += 1
        return super().__matmul__(other)

    def __rmatmul__(self, other):
        type(self).count[0] += 1
        return super().__rmatmul__(other)


class TestSquaringGemmCount:
    def test_trailing_squaring_gemm_skipped(self, monkeypatch):
        """Regression: the final loop iteration must not square H_k and
        c_pow one extra time — neither is read again, so the solver does
        exactly 2 GEMMs per iteration for the P update plus one squaring
        GEMM per non-final iteration: ``3 * (steps + 1) - 1`` total."""
        import repro.linalg.stein as stein

        h = _contraction(6, seed=8)
        c, eps = 0.6, 1e-5
        reference, _ = solve_stein_squaring(h, c, eps)

        _MatmulCounter.count[0] = 0
        monkeypatch.setattr(
            stein,
            "_check_inputs",
            lambda h_in, c_in: np.asarray(h_in, dtype=np.float64).view(
                _MatmulCounter
            ),
        )
        counted, steps_plus_one = solve_stein_squaring(h, c, eps)
        assert steps_plus_one == squaring_iteration_count(c, eps) + 1
        assert _MatmulCounter.count[0] == 3 * steps_plus_one - 1
        # the returned (P, steps) pair is untouched by the optimisation
        np.testing.assert_array_equal(np.asarray(counted), reference)

    def test_zero_steps_does_no_squaring(self, monkeypatch):
        """steps == 0 (coarse epsilon): one P update, zero squarings."""
        import repro.linalg.stein as stein

        c, eps = 0.2, 0.5
        assert squaring_iteration_count(c, eps) == 0
        _MatmulCounter.count[0] = 0
        monkeypatch.setattr(
            stein,
            "_check_inputs",
            lambda h_in, c_in: np.asarray(h_in, dtype=np.float64).view(
                _MatmulCounter
            ),
        )
        _, steps_plus_one = solve_stein_squaring(_contraction(4, seed=9), c, eps)
        assert steps_plus_one == 1
        assert _MatmulCounter.count[0] == 2


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_stein_direct(np.zeros((2, 3)), 0.6)

    def test_bad_damping_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_stein_squaring(np.eye(2), 1.5)

    def test_divergent_fixed_point_raises(self):
        h = np.eye(3) * 3.0  # sqrt(c) * ||H|| > 1
        with pytest.raises(ConvergenceError):
            solve_stein_fixed_point(h, 0.6, epsilon=1e-10, max_iterations=50)

    def test_fixed_point_reports_iterations(self):
        h = _contraction(4, seed=5)
        _, iterations = solve_stein_fixed_point(h, 0.6, epsilon=1e-8)
        assert iterations >= 1

    def test_direct_refuses_large_rank(self):
        """The r^2 x r^2 system would need 8 r^4 bytes; r = 65 is refused."""
        h = _contraction(65, seed=6)
        with pytest.raises(InvalidParameterError):
            solve_stein_direct(h, 0.6)

    def test_direct_boundary_rank_allowed(self):
        h = _contraction(64, seed=7)
        p = solve_stein_direct(h, 0.6)
        assert p.shape == (64, 64)
