"""Unit tests for the vec/Kronecker toolkit (Definitions 2.1-2.2)."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import InvalidParameterError
from repro.linalg.kronecker import kron, mixed_product, unvec, vec, vec_identity


class TestVec:
    def test_column_stacking(self):
        matrix = np.array([[1, 3], [2, 4]])
        np.testing.assert_array_equal(vec(matrix), [1, 2, 3, 4])

    def test_rectangular(self):
        matrix = np.arange(6).reshape(2, 3)
        assert vec(matrix).shape == (6,)
        np.testing.assert_array_equal(vec(matrix), [0, 3, 1, 4, 2, 5])

    def test_sparse_input(self):
        matrix = sparse.csr_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
        np.testing.assert_array_equal(vec(matrix), [0, 2, 1, 0])

    def test_unvec_roundtrip(self, rng):
        matrix = rng.standard_normal((4, 7))
        np.testing.assert_array_equal(unvec(vec(matrix), 4, 7), matrix)

    def test_unvec_size_mismatch(self):
        with pytest.raises(InvalidParameterError):
            unvec(np.zeros(5), 2, 3)

    def test_vec_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            vec(np.zeros(4))

    def test_vec_copy_independent(self):
        matrix = np.zeros((2, 2))
        vector = vec(matrix)
        vector[0] = 99.0
        assert matrix[0, 0] == 0.0


class TestKron:
    def test_matches_definition(self):
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[0, 1], [1, 0]])
        expected = np.block([[0 * b + b, 2 * b], [3 * b, 4 * b]])
        np.testing.assert_array_equal(kron(a, b), expected)

    def test_sparse_operands(self):
        a = sparse.identity(2)
        b = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = kron(a, b)
        np.testing.assert_array_equal(result[:2, :2], b)
        np.testing.assert_array_equal(result[2:, :2], 0)

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            kron(np.zeros(3), np.eye(2))


class TestVecIdentity:
    def test_values(self):
        v = vec_identity(3)
        expected = vec(np.eye(3))
        np.testing.assert_array_equal(v, expected)

    def test_sparsity_structure(self):
        v = vec_identity(4)
        assert v.sum() == 4
        assert np.flatnonzero(v).tolist() == [0, 5, 10, 15]

    def test_zero(self):
        assert vec_identity(0).size == 0

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            vec_identity(-1)


class TestIdentitiesUsedByTheTheorems:
    """The algebra §3.2 relies on, checked numerically."""

    def test_vec_of_product_identity(self, rng):
        """vec(A X B) = (B^T kron A) vec(X)."""
        a = rng.standard_normal((3, 4))
        x = rng.standard_normal((4, 5))
        b = rng.standard_normal((5, 2))
        left = vec(a @ x @ b)
        right = kron(b.T, a) @ vec(x)
        np.testing.assert_allclose(left, right, atol=1e-12)

    def test_transpose_distributes(self, rng):
        v = rng.standard_normal((4, 3))
        np.testing.assert_allclose(kron(v, v).T, kron(v.T, v.T), atol=1e-12)

    def test_mixed_product_property(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((2, 5))
        c = rng.standard_normal((4, 2))
        d = rng.standard_normal((5, 3))
        direct = kron(a, b) @ kron(c, d)
        via_helper = mixed_product(a, b, c, d)
        np.testing.assert_allclose(direct, via_helper, atol=1e-12)

    def test_theorem_3_1(self, rng):
        """(V kron V)^T (U kron U) = (V^T U) kron (V^T U)."""
        u = rng.standard_normal((6, 3))
        v = rng.standard_normal((6, 3))
        theta = v.T @ u
        np.testing.assert_allclose(
            kron(v, v).T @ kron(u, u), kron(theta, theta), atol=1e-12
        )

    def test_theorem_3_2(self, rng):
        """(V kron V)^T vec(I_n) = vec(I_r) for column-orthonormal V."""
        matrix = rng.standard_normal((7, 3))
        v, _ = np.linalg.qr(matrix)
        left = kron(v, v).T @ vec_identity(7)
        np.testing.assert_allclose(left, vec_identity(3), atol=1e-12)

    def test_theorem_3_5_identity(self, rng):
        """(U kron U) vec(M) = vec(U M U^T)."""
        u = rng.standard_normal((5, 3))
        m = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            kron(u, u) @ vec(m), vec(u @ m @ u.T), atol=1e-12
        )
