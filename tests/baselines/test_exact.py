"""Unit tests for the exact reference solver."""

import numpy as np
import pytest

from repro.baselines.exact import (
    ExactCoSimRank,
    exact_cosimrank_direct,
    exact_cosimrank_matrix,
)
from repro.errors import InvalidParameterError, MemoryBudgetExceeded
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import erdos_renyi, ring
from repro.graphs.transition import transition_matrix


class TestReferenceImplementations:
    def test_iteration_matches_direct(self):
        graph = erdos_renyi(20, 80, seed=1)
        q_dense = transition_matrix(graph).toarray()
        via_iter = exact_cosimrank_matrix(q_dense, 0.6, epsilon=1e-13)
        via_direct = exact_cosimrank_direct(q_dense, 0.6)
        np.testing.assert_allclose(via_iter, via_direct, atol=1e-10)

    def test_direct_size_guard(self):
        with pytest.raises(InvalidParameterError):
            exact_cosimrank_direct(np.zeros((65, 65)), 0.6)

    def test_fixed_point_property(self):
        graph = erdos_renyi(15, 60, seed=2)
        q_dense = transition_matrix(graph).toarray()
        s_matrix = exact_cosimrank_matrix(q_dense, 0.7, epsilon=1e-13)
        residual = s_matrix - (0.7 * q_dense.T @ s_matrix @ q_dense + np.eye(15))
        assert np.max(np.abs(residual)) < 1e-10


class TestEngine:
    def test_engine_methods_agree(self, small_er):
        engine = ExactCoSimRank(small_er)
        matrix = engine.all_pairs()
        column = engine.single_source(4)
        np.testing.assert_array_equal(column, matrix[:, 4])
        assert engine.single_pair(2, 4) == matrix[2, 4]

    def test_direct_method_option(self):
        graph = ring(8)
        a = ExactCoSimRank(graph, method="direct").all_pairs()
        b = ExactCoSimRank(graph, method="iteration").all_pairs()
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_bad_method(self):
        with pytest.raises(InvalidParameterError):
            ExactCoSimRank(ring(3), method="guess")

    def test_bad_epsilon(self):
        with pytest.raises(InvalidParameterError):
            ExactCoSimRank(ring(3), epsilon=2.0)

    def test_budget_refusal_before_allocation(self):
        graph = erdos_renyi(200, 800, seed=3)
        engine = ExactCoSimRank(graph, memory_budget_bytes=100_000)
        with pytest.raises(MemoryBudgetExceeded):
            engine.prepare()

    def test_known_values_on_star(self):
        """Inward star: all leaves share in-neighbour structure trivially."""
        # leaves 1..3 -> hub 0; leaves have no in-edges
        graph = DiGraph(4, [(1, 0), (2, 0), (3, 0)])
        s_matrix = ExactCoSimRank(graph, damping=0.6).all_pairs()
        # hub similarity: p_0^(1) is uniform over leaves, then dies
        # S[0,0] = 1 + 0.6 * ||p^(1)||^2 = 1 + 0.6 * 3 * (1/3)^2
        assert s_matrix[0, 0] == pytest.approx(1.0 + 0.6 / 3.0, abs=1e-10)
        # leaves are only similar to themselves
        assert s_matrix[1, 1] == pytest.approx(1.0)
        assert s_matrix[1, 2] == pytest.approx(0.0, abs=1e-12)
