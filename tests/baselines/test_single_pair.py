"""Unit tests for the single-pair early-termination algorithm."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.single_pair import single_pair_cosimrank
from repro.errors import InvalidParameterError, QueryError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, path_graph, ring


class TestCorrectness:
    @pytest.mark.parametrize("pair", [(0, 0), (1, 8), (30, 55)])
    def test_matches_exact(self, small_er, pair):
        exact = ExactCoSimRank(small_er).single_pair(*pair)
        value, _ = single_pair_cosimrank(small_er, *pair, epsilon=1e-10)
        assert value == pytest.approx(exact, abs=1e-8)

    def test_self_pair_at_least_one(self, small_powerlaw):
        value, _ = single_pair_cosimrank(small_powerlaw, 3, 3)
        assert value >= 1.0

    def test_symmetry(self, small_er):
        ab, _ = single_pair_cosimrank(small_er, 2, 9, epsilon=1e-10)
        ba, _ = single_pair_cosimrank(small_er, 9, 2, epsilon=1e-10)
        assert ab == pytest.approx(ba, abs=1e-12)

    def test_epsilon_bound(self, small_powerlaw):
        exact = ExactCoSimRank(small_powerlaw).single_pair(5, 17)
        for eps in (1e-2, 1e-5, 1e-8):
            value, _ = single_pair_cosimrank(small_powerlaw, 5, 17, epsilon=eps)
            assert abs(value - exact) < eps


class TestEarlyTermination:
    def test_dead_walk_stops_early(self):
        """On a path the walk leaves the graph after n steps."""
        graph = path_graph(5)
        _, iterations = single_pair_cosimrank(graph, 4, 4, epsilon=1e-300,
                                              max_iterations=1000)
        assert iterations <= 5

    def test_tail_bound_termination(self):
        """On a ring the walk lives forever; the tail bound stops it."""
        graph = ring(6)
        _, iterations = single_pair_cosimrank(graph, 0, 0, epsilon=1e-6)
        # c^k/(1-c) < 1e-6 at k ~ 27 for c = 0.6
        assert 20 <= iterations <= 40

    def test_tighter_epsilon_more_iterations(self, small_powerlaw):
        _, loose = single_pair_cosimrank(small_powerlaw, 0, 1, epsilon=1e-2)
        _, tight = single_pair_cosimrank(small_powerlaw, 0, 1, epsilon=1e-10)
        assert tight >= loose


class TestValidation:
    def test_bad_damping(self, small_er):
        with pytest.raises(InvalidParameterError):
            single_pair_cosimrank(small_er, 0, 1, damping=1.0)

    def test_bad_epsilon(self, small_er):
        with pytest.raises(InvalidParameterError):
            single_pair_cosimrank(small_er, 0, 1, epsilon=0.0)

    def test_bad_nodes(self, small_er):
        with pytest.raises(QueryError):
            single_pair_cosimrank(small_er, 0, 999)

    def test_disconnected_pair_zero(self):
        graph = DiGraph(4, [(0, 1), (2, 3)])
        value, _ = single_pair_cosimrank(graph, 1, 3)
        assert value == 0.0
