"""Unit tests for the RP-CoSim baseline (random projections)."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.rpcosim import RPCoSimEngine
from repro.errors import InvalidParameterError
from repro.metrics.accuracy import avg_diff


class TestEstimatorQuality:
    def test_error_shrinks_with_more_projections(self, small_er):
        exact = ExactCoSimRank(small_er).query([0, 5, 9])
        errors = []
        for d in (16, 256, 4096):
            engine = RPCoSimEngine(
                small_er, iterations=30, num_projections=d, seed=1
            )
            errors.append(avg_diff(engine.query([0, 5, 9]), exact))
        assert errors[2] < errors[0]
        assert errors[2] < 0.05

    def test_roughly_unbiased_across_seeds(self, small_er):
        """Averaging estimates over seeds approaches the exact value."""
        exact = ExactCoSimRank(small_er).single_pair(3, 8)
        estimates = [
            RPCoSimEngine(
                small_er, iterations=30, num_projections=64, seed=s
            ).single_pair(3, 8)
            for s in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(exact, abs=0.05)

    def test_standard_error_bound_positive_and_shrinking(self, small_er):
        loose = RPCoSimEngine(small_er, num_projections=16).standard_error_bound()
        tight = RPCoSimEngine(small_er, num_projections=1024).standard_error_bound()
        assert 0 < tight < loose


class TestModes:
    def test_modes_agree(self, small_er):
        all_pairs = RPCoSimEngine(
            small_er, iterations=10, num_projections=128, seed=3, mode="all-pairs"
        ).query([2, 4])
        multi = RPCoSimEngine(
            small_er, iterations=10, num_projections=128, seed=3, mode="multi-source"
        ).query([2, 4])
        np.testing.assert_allclose(all_pairs, multi, atol=1e-9)

    def test_all_pairs_mode_materialises_n_squared(self, small_er):
        engine = RPCoSimEngine(small_er, mode="all-pairs").prepare()
        n = small_er.num_nodes
        assert engine.memory.high_water_breakdown()["precompute/S_hat"] == n * n * 8

    def test_multi_source_mode_does_not(self, small_er):
        engine = RPCoSimEngine(small_er, mode="multi-source").prepare()
        assert "precompute/S_hat" not in engine.memory.high_water_breakdown()

    def test_deterministic_given_seed(self, small_er):
        a = RPCoSimEngine(small_er, seed=7).query([0])
        b = RPCoSimEngine(small_er, seed=7).query([0])
        np.testing.assert_array_equal(a, b)


class TestDtype:
    """Regression tests for the dtype plumbing bug: a requested
    ``float32`` used to be ignored past the constructor, so sketches,
    ``S_hat``, query results, and the memory ledger all stayed f64."""

    def test_float32_honoured_end_to_end(self, small_er):
        engine = RPCoSimEngine(
            small_er, iterations=5, num_projections=64, seed=2,
            mode="all-pairs", dtype="float32",
        ).prepare()
        assert all(y.dtype == np.float32 for y in engine._sketches)
        assert engine._s_hat.dtype == np.float32
        assert engine.query([0, 5]).dtype == np.float32

    def test_float32_multi_source_result_dtype(self, small_er):
        engine = RPCoSimEngine(
            small_er, iterations=5, num_projections=64, seed=2,
            mode="multi-source", dtype=np.float32,
        )
        assert engine.query([1, 3]).dtype == np.float32

    def test_ledger_charged_with_actual_itemsize(self, small_er):
        n = small_er.num_nodes
        f32 = RPCoSimEngine(
            small_er, iterations=5, num_projections=64,
            mode="all-pairs", dtype="float32",
        ).prepare()
        f64 = RPCoSimEngine(
            small_er, iterations=5, num_projections=64,
            mode="all-pairs", dtype="float64",
        ).prepare()
        f32_usage = f32.memory.high_water_breakdown()
        f64_usage = f64.memory.high_water_breakdown()
        assert f32_usage["precompute/S_hat"] == n * n * 4
        assert f64_usage["precompute/S_hat"] == n * n * 8
        assert (
            f32_usage["precompute/sketches"] * 2
            == f64_usage["precompute/sketches"]
        )

    def test_float32_fits_half_the_budget(self, small_er):
        n = small_er.num_nodes
        # 3 sketches of 16 x n plus S_hat: 25,920 bytes at f32,
        # 51,840 at f64 — a budget between the two separates them
        budget = n * n * 8 + 16 * n * 4 * 3
        RPCoSimEngine(
            small_er, iterations=2, num_projections=16, mode="all-pairs",
            dtype="float32", memory_budget_bytes=budget,
        ).prepare()
        from repro.errors import MemoryBudgetExceeded

        with pytest.raises(MemoryBudgetExceeded):
            RPCoSimEngine(
                small_er, iterations=2, num_projections=16, mode="all-pairs",
                dtype="float64", memory_budget_bytes=budget,
            ).prepare()

    def test_bad_dtype_rejected(self, small_er):
        with pytest.raises(InvalidParameterError, match="dtype"):
            RPCoSimEngine(small_er, dtype="int32")
        with pytest.raises(InvalidParameterError, match="dtype"):
            RPCoSimEngine(small_er, dtype=np.float16)


class TestValidation:
    def test_bad_mode(self, small_er):
        with pytest.raises(InvalidParameterError):
            RPCoSimEngine(small_er, mode="exactly")

    def test_bad_projections(self, small_er):
        with pytest.raises(InvalidParameterError):
            RPCoSimEngine(small_er, num_projections=0)

    def test_bad_iterations(self, small_er):
        with pytest.raises(InvalidParameterError):
            RPCoSimEngine(small_er, iterations=0)

    def test_for_rank(self, small_er):
        assert RPCoSimEngine.for_rank(small_er, rank=4).iterations == 4
