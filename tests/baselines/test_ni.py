"""Unit tests for the CSR-NI baseline (Li et al. 2010)."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.ni import CSRNIEngine
from repro.core.index import CSRPlusIndex
from repro.errors import (
    DecompositionError,
    InvalidParameterError,
    MemoryBudgetExceeded,
)
from repro.graphs.generators import chung_lu, erdos_renyi


class TestLosslessnessVsCSRPlus:
    """The paper's central exactness claim: Theorems 3.1-3.5 are
    rewrites, so CSR-NI and CSR+ agree at every rank."""

    @pytest.mark.parametrize("rank", [2, 5, 10, 25])
    def test_equal_outputs_across_ranks(self, rank):
        graph = chung_lu(60, 280, seed=4)
        queries = [0, 10, 59]
        ni = CSRNIEngine(graph, rank=rank).query(queries)
        plus = CSRPlusIndex(graph, rank=rank, epsilon=1e-13).query(queries)
        np.testing.assert_allclose(ni, plus, atol=1e-9)

    @pytest.mark.parametrize("damping", [0.4, 0.6, 0.8])
    def test_equal_outputs_across_damping(self, damping):
        graph = erdos_renyi(50, 220, seed=5)
        ni = CSRNIEngine(graph, rank=6, damping=damping).query([1, 2])
        plus = CSRPlusIndex(
            graph, rank=6, damping=damping, epsilon=1e-13
        ).query([1, 2])
        np.testing.assert_allclose(ni, plus, atol=1e-9)

    def test_full_rank_matches_exact(self):
        graph = erdos_renyi(25, 120, seed=6)
        exact = ExactCoSimRank(graph).all_pairs()
        # full numerical rank may be < n; use the largest safe rank
        from repro.graphs.transition import transition_matrix

        sigma = np.linalg.svd(
            transition_matrix(graph).toarray(), compute_uv=False
        )
        rank = int(np.sum(sigma > 1e-10))
        ni = CSRNIEngine(graph, rank=rank).all_pairs()
        np.testing.assert_allclose(ni, exact, atol=1e-7)


class TestCostStructure:
    def test_tensor_products_materialised(self, small_er):
        """The literal method really holds the O(n^2 r^2) arrays."""
        n = small_er.num_nodes
        rank = 3
        engine = CSRNIEngine(small_er, rank=rank).prepare()
        breakdown = engine.memory.high_water_breakdown()
        assert breakdown["precompute/U_kron_U"] == n * n * rank * rank * 8
        assert breakdown["precompute/V_kron_V"] == n * n * rank * rank * 8

    def test_budget_crash_before_allocation(self):
        graph = chung_lu(300, 1500, seed=7)
        engine = CSRNIEngine(graph, rank=5, memory_budget_bytes=10_000_000)
        with pytest.raises(MemoryBudgetExceeded):
            engine.prepare()

    def test_query_charges_vec_s(self, small_er):
        engine = CSRNIEngine(small_er, rank=3)
        engine.query([0])
        n = small_er.num_nodes
        assert engine.memory.high_water_breakdown()["query/vecS"] == n * n * 8


class TestValidation:
    def test_rank_bounds(self, small_er):
        with pytest.raises(InvalidParameterError):
            CSRNIEngine(small_er, rank=0)
        with pytest.raises(InvalidParameterError):
            CSRNIEngine(small_er, rank=small_er.num_nodes + 1)

    def test_zero_singular_value_rejected(self):
        """Rank exceeding rank(Q) makes Sigma kron Sigma singular."""
        from repro.datasets.toy import figure1_graph

        engine = CSRNIEngine(figure1_graph(), rank=6)  # rank(Q) = 4
        with pytest.raises(DecompositionError):
            engine.prepare()
