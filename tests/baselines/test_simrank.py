"""Unit tests for SimRank and the paper's §2 relationship claims."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.simrank import SimRankEngine, simrank_matrix
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, erdos_renyi, ring
from repro.graphs.transition import transition_matrix


class TestSimRankBasics:
    def test_diagonal_exactly_one(self, small_er):
        s_matrix = SimRankEngine(small_er).all_pairs()
        np.testing.assert_allclose(np.diag(s_matrix), 1.0)

    def test_symmetric_and_bounded(self, small_powerlaw):
        s_matrix = SimRankEngine(small_powerlaw).all_pairs()
        np.testing.assert_allclose(s_matrix, s_matrix.T, atol=1e-9)
        assert s_matrix.min() >= -1e-12
        assert s_matrix.max() <= 1.0 + 1e-12

    def test_fixed_point_property(self):
        """Off-diagonal: S = c Q^T S Q; diagonal pinned to 1."""
        graph = erdos_renyi(25, 100, seed=31)
        q_dense = transition_matrix(graph).toarray()
        s_matrix = simrank_matrix(q_dense, 0.6, epsilon=1e-13)
        rhs = 0.6 * q_dense.T @ s_matrix @ q_dense
        off = ~np.eye(25, dtype=bool)
        np.testing.assert_allclose(s_matrix[off], rhs[off], atol=1e-9)

    def test_ring_simrank_is_identity(self):
        s_matrix = SimRankEngine(ring(6)).all_pairs()
        np.testing.assert_allclose(s_matrix, np.eye(6), atol=1e-10)

    def test_bad_epsilon(self, small_er):
        with pytest.raises(InvalidParameterError):
            SimRankEngine(small_er, epsilon=0.0)


class TestPaperSection2Claims:
    """The historical point of §2: Li et al.'s Eq. (4) is scaled
    CoSimRank, not SimRank."""

    @pytest.fixture(scope="class")
    def graph(self):
        return chung_lu(40, 200, seed=32)

    def test_li_et_al_equation_is_scaled_cosimrank(self, graph):
        """Solution of S' = cQ^T S'Q + (1-c)I equals (1-c) * CoSimRank."""
        c = 0.6
        q_dense = transition_matrix(graph).toarray()
        n = graph.num_nodes
        s_li = (1 - c) * np.eye(n)
        for _ in range(400):
            s_li = c * q_dense.T @ s_li @ q_dense + (1 - c) * np.eye(n)
        cosim = ExactCoSimRank(graph, damping=c, epsilon=1e-13).all_pairs()
        np.testing.assert_allclose(s_li, (1 - c) * cosim, atol=1e-9)

    def test_li_et_al_equation_is_not_simrank(self, graph):
        """...and genuinely differs from the true SimRank (Eq. 2)."""
        c = 0.6
        q_dense = transition_matrix(graph).toarray()
        n = graph.num_nodes
        s_li = (1 - c) * np.eye(n)
        for _ in range(400):
            s_li = c * q_dense.T @ s_li @ q_dense + (1 - c) * np.eye(n)
        simrank = SimRankEngine(graph, damping=c).all_pairs()
        assert np.max(np.abs(s_li - simrank)) > 1e-3

    def test_cosimrank_diagonal_not_one(self, graph):
        """The §1 nuance: CoSimRank's self-similarity exceeds 1 in
        general, unlike SimRank's pinned diagonal."""
        cosim = ExactCoSimRank(graph).all_pairs()
        assert np.diag(cosim).max() > 1.0 + 1e-6

    def test_cosimrank_majorises_first_meeting(self, graph):
        """All-meeting-times >= SimRank-like single contributions:
        CoSimRank keeps more link information (richer scores)."""
        cosim = ExactCoSimRank(graph).all_pairs()
        simrank = SimRankEngine(graph).all_pairs()
        # not an entrywise theorem, but on aggregate CoSimRank carries
        # at least as much mass off the diagonal for this graph family
        off = ~np.eye(graph.num_nodes, dtype=bool)
        assert cosim[off].sum() >= simrank[off].sum() * 0.5
