"""Unit tests for the CSR-IT baseline (all-pairs iteration)."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.iterative import CSRITEngine
from repro.errors import InvalidParameterError, MemoryBudgetExceeded, TimeBudgetExceeded
from repro.graphs.generators import chung_lu, erdos_renyi
from repro.graphs.transition import transition_matrix


class TestCorrectness:
    def test_matches_truncated_series(self, small_er):
        """After K iterations, S equals the K-term power series."""
        k_iters = 4
        q_dense = transition_matrix(small_er).toarray()
        expected = np.eye(small_er.num_nodes)
        for _ in range(k_iters):
            expected = 0.6 * q_dense.T @ expected @ q_dense + np.eye(
                small_er.num_nodes
            )
        engine = CSRITEngine(small_er, iterations=k_iters)
        np.testing.assert_allclose(engine.all_pairs(), expected, atol=1e-10)

    def test_converges_to_exact(self, small_er):
        exact = ExactCoSimRank(small_er).all_pairs()
        engine = CSRITEngine(small_er, iterations=60)
        np.testing.assert_allclose(engine.all_pairs(), exact, atol=1e-10)

    def test_query_columns_match_all_pairs(self, small_er):
        engine = CSRITEngine(small_er, iterations=10)
        matrix = engine.all_pairs()
        block = engine.query([3, 7])
        np.testing.assert_array_equal(block[:, 0], matrix[:, 3])
        np.testing.assert_array_equal(block[:, 1], matrix[:, 7])

    def test_for_rank_fairness_rule(self, small_er):
        engine = CSRITEngine.for_rank(small_er, rank=7)
        assert engine.iterations == 7


class TestResourceGuards:
    def test_memory_crash_on_dense_fill_in(self):
        graph = chung_lu(1000, 6000, seed=8)
        engine = CSRITEngine(graph, iterations=5, memory_budget_bytes=500_000)
        with pytest.raises(MemoryBudgetExceeded):
            engine.prepare()

    def test_time_budget_polled(self):
        graph = chung_lu(2000, 12000, seed=9)
        engine = CSRITEngine(graph, iterations=50)
        engine.time_budget_seconds = 1e-9
        with pytest.raises(TimeBudgetExceeded):
            engine.prepare()

    def test_invalid_iterations(self, small_er):
        with pytest.raises(InvalidParameterError):
            CSRITEngine(small_er, iterations=0)


class TestQIndependence:
    def test_preprocessing_holds_whole_matrix(self, small_er):
        """The method is all-pairs: query cost is slicing only."""
        engine = CSRITEngine(small_er, iterations=5).prepare()
        small_block = engine.query([0])
        large_block = engine.query(list(range(20)))
        np.testing.assert_array_equal(small_block[:, 0], large_block[:, 0])
        # the stored S matrix exists independent of queries
        assert engine._s_matrix is not None
