"""Unit tests for the F-CoSim engine (exact single-source + dynamics)."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.baselines.fcosim import FCoSimEngine
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu


def _two_components(size, edges_each, seed):
    left = chung_lu(size, edges_each, seed=seed)
    right = chung_lu(size, edges_each, seed=seed + 1)
    src = np.concatenate([left.edge_sources, right.edge_sources + size])
    dst = np.concatenate([left.edge_targets, right.edge_targets + size])
    return DiGraph.from_arrays(2 * size, src, dst)


class TestExactness:
    def test_matches_exact_to_epsilon(self, small_er):
        exact = ExactCoSimRank(small_er).query([1, 8, 30])
        engine = FCoSimEngine(small_er, epsilon=1e-8)
        np.testing.assert_allclose(engine.query([1, 8, 30]), exact, atol=1e-7)

    def test_depth_chosen_from_epsilon(self, small_er):
        shallow = FCoSimEngine(small_er, epsilon=1e-2)
        deep = FCoSimEngine(small_er, epsilon=1e-10)
        assert deep.depth > shallow.depth

    def test_invalid_epsilon(self, small_er):
        with pytest.raises(InvalidParameterError):
            FCoSimEngine(small_er, epsilon=1.5)


class TestCaching:
    def test_cache_grows_and_hits(self, small_er):
        engine = FCoSimEngine(small_er)
        engine.query([1, 2])
        assert engine.cache_size == 2
        first = engine.query([1])[:, 0]
        second = engine.query([1])[:, 0]
        np.testing.assert_array_equal(first, second)
        assert engine.cache_size == 2  # no new entries

    def test_cached_column_is_reused_object_level(self, small_er):
        engine = FCoSimEngine(small_er)
        engine.query([4])
        cached = engine._cache[4]
        engine.query([4])
        assert engine._cache[4] is cached


class TestDynamics:
    def test_update_correctness_random_edits(self):
        """After arbitrary updates, results equal a fresh engine's."""
        rng = np.random.default_rng(3)
        graph = chung_lu(150, 700, seed=13)
        engine = FCoSimEngine(graph, epsilon=1e-6)
        queries = [0, 25, 50, 149]
        engine.query(queries)
        for _ in range(3):
            add = [(int(rng.integers(150)), int(rng.integers(150)))]
            add = [(s, t) for s, t in add if s != t]
            engine.update_edges(added=add)
            block = engine.query(queries)
            fresh = FCoSimEngine(engine.graph, epsilon=1e-6).query(queries)
            np.testing.assert_allclose(block, fresh, atol=1e-10)

    def test_removal_correctness(self):
        graph = chung_lu(100, 500, seed=14)
        engine = FCoSimEngine(graph, epsilon=1e-6)
        engine.query([10, 20])
        edge = (int(graph.edge_sources[0]), int(graph.edge_targets[0]))
        engine.update_edges(removed=[edge])
        assert not engine.graph.has_edge(*edge)
        fresh = FCoSimEngine(engine.graph, epsilon=1e-6).query([10, 20])
        np.testing.assert_allclose(engine.query([10, 20]), fresh, atol=1e-10)

    def test_locality_of_invalidation(self):
        """Edits in one component leave the other's cache warm."""
        graph = _two_components(200, 600, seed=15)
        engine = FCoSimEngine(graph, epsilon=1e-4)
        engine.query([5, 205])  # one query per component
        invalidated = engine.update_edges(added=[(1, 2)])  # left component
        assert invalidated <= 1
        assert engine.cache_size >= 1  # the right-component column survives

    def test_noop_update(self, small_er):
        engine = FCoSimEngine(small_er)
        engine.query([0])
        assert engine.update_edges() == 0
        assert engine.cache_size == 1

    def test_update_applies_graph_change(self, small_er):
        engine = FCoSimEngine(small_er)
        engine.prepare()
        new_edge = (0, 1) if not small_er.has_edge(0, 1) else (1, 0)
        engine.update_edges(added=[new_edge])
        assert engine.graph.has_edge(*new_edge)
