"""Unit tests for the CSR-RLS baseline (per-query forward/backward)."""

import numpy as np
import pytest

from repro.baselines.iterative import CSRITEngine
from repro.baselines.rls import CSRRLSEngine
from repro.errors import InvalidParameterError, TimeBudgetExceeded
from repro.graphs.generators import chung_lu
from repro.graphs.transition import transition_matrix


class TestCorrectness:
    @pytest.mark.parametrize("k_iters", [1, 3, 8])
    def test_matches_truncated_series_per_query(self, small_er, k_iters):
        """u_0 = sum_{j<=K} c^j (Q^T)^j Q^j e_q, per the linearisation."""
        q_dense = transition_matrix(small_er).toarray()
        n = small_er.num_nodes
        query = 5
        expected = np.zeros(n)
        power = np.eye(n)[:, query]
        forward = [power]
        for _ in range(k_iters):
            forward.append(q_dense @ forward[-1])
        for j, vec in enumerate(forward):
            expected += (0.6**j) * np.linalg.matrix_power(q_dense.T, j) @ vec
        engine = CSRRLSEngine(small_er, iterations=k_iters)
        np.testing.assert_allclose(engine.single_source(query), expected, atol=1e-10)

    def test_agrees_with_csr_it_at_equal_iterations(self, small_powerlaw):
        """Same truncation depth => identical numbers (both exact)."""
        queries = [0, 17, 63]
        rls = CSRRLSEngine(small_powerlaw, iterations=6).query(queries)
        it = CSRITEngine(small_powerlaw, iterations=6).query(queries)
        np.testing.assert_allclose(rls, it, atol=1e-10)

    def test_for_rank_fairness_rule(self, small_er):
        assert CSRRLSEngine.for_rank(small_er, rank=9).iterations == 9


class TestPerQueryCostStructure:
    def test_query_time_grows_with_q(self):
        """The per-query loop means more queries -> more matvecs.

        Asserted structurally (matvec counter), not by wall clock.
        """
        graph = chung_lu(500, 2500, seed=10)
        engine = CSRRLSEngine(graph, iterations=5).prepare()
        calls = {"n": 0}
        original = engine._single_query_column

        def counting(query):
            calls["n"] += 1
            return original(query)

        engine._single_query_column = counting
        engine.query(list(range(10)))
        assert calls["n"] == 10
        engine.query(list(range(30)))
        assert calls["n"] == 40

    def test_time_budget_polled_between_queries(self):
        graph = chung_lu(500, 2500, seed=11)
        engine = CSRRLSEngine(graph, iterations=5).prepare()
        engine.time_budget_seconds = 1e-9
        with pytest.raises(TimeBudgetExceeded):
            engine.query(list(range(5)))

    def test_invalid_iterations(self, small_er):
        with pytest.raises(InvalidParameterError):
            CSRRLSEngine(small_er, iterations=-1)
