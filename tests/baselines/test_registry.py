"""Unit tests for the engine registry."""

import numpy as np
import pytest

from repro.baselines.registry import COMPARISON_ENGINES, engine_names, make_engine
from repro.errors import InvalidParameterError
from repro.graphs.generators import erdos_renyi


class TestRegistry:
    def test_comparison_set_matches_paper(self):
        assert COMPARISON_ENGINES == ("CSR+", "CSR-RLS", "CSR-IT", "CSR-NI")

    def test_all_names_instantiable(self, small_er):
        for name in engine_names():
            engine = make_engine(name, small_er, rank=4)
            assert engine.name == name

    def test_unknown_name(self, small_er):
        with pytest.raises(InvalidParameterError):
            make_engine("CSR-??", small_er)

    def test_fairness_rule_wiring(self, small_er):
        it_engine = make_engine("CSR-IT", small_er, rank=9)
        rls_engine = make_engine("CSR-RLS", small_er, rank=9)
        assert it_engine.iterations == 9
        assert rls_engine.iterations == 9

    def test_budget_passed_through(self, small_er):
        engine = make_engine("CSR+", small_er, memory_budget_bytes=123456)
        assert engine.memory.budget_bytes == 123456

    def test_all_engines_roughly_agree(self):
        """Every registered engine approximates the same similarity."""
        graph = erdos_renyi(40, 200, seed=16)
        queries = [0, 5]
        reference = make_engine("Exact", graph).query(queries)
        for name in engine_names():
            if name == "Exact":
                continue
            engine = make_engine(name, graph, rank=39)
            block = engine.query(queries)
            # RP-CoSim is stochastic; everything else is tight.
            tolerance = 0.5 if name == "RP-CoSim" else 2e-2
            assert np.max(np.abs(block - reference)) < tolerance, name
