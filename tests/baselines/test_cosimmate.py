"""Unit tests for the CoSimMate baseline (repeated squaring, all-pairs)."""

import numpy as np
import pytest

from repro.baselines.cosimmate import CoSimMateEngine
from repro.baselines.exact import ExactCoSimRank
from repro.errors import InvalidParameterError, MemoryBudgetExceeded
from repro.graphs.generators import chung_lu, erdos_renyi
from repro.linalg.stein import squaring_iteration_count


class TestCorrectness:
    def test_matches_exact_at_tight_epsilon(self, small_er):
        exact = ExactCoSimRank(small_er).all_pairs()
        mate = CoSimMateEngine(small_er, epsilon=1e-10).all_pairs()
        np.testing.assert_allclose(mate, exact, atol=1e-8)

    def test_epsilon_bound_respected(self, small_er):
        exact = ExactCoSimRank(small_er).all_pairs()
        for eps in (1e-2, 1e-4, 1e-6):
            mate = CoSimMateEngine(small_er, epsilon=eps).all_pairs()
            assert np.max(np.abs(mate - exact)) < eps

    def test_squaring_steps_exponentially_fewer(self, small_er):
        engine = CoSimMateEngine(small_er, epsilon=1e-5).prepare()
        assert engine.squaring_steps == squaring_iteration_count(0.6, 1e-5) + 1
        assert engine.squaring_steps <= 8  # vs ~23 plain iterations

    def test_query_slices_precomputed_matrix(self, small_er):
        engine = CoSimMateEngine(small_er, epsilon=1e-8)
        matrix = engine.all_pairs()
        np.testing.assert_array_equal(engine.query([4])[:, 0], matrix[:, 4])


class TestGuards:
    def test_invalid_epsilon(self, small_er):
        with pytest.raises(InvalidParameterError):
            CoSimMateEngine(small_er, epsilon=0.0)

    def test_memory_crash_with_tiny_budget(self):
        graph = chung_lu(800, 4800, seed=12)
        engine = CoSimMateEngine(graph, memory_budget_bytes=400_000)
        with pytest.raises(MemoryBudgetExceeded):
            engine.prepare()

    def test_w_matrix_memory_tracked(self, small_er):
        engine = CoSimMateEngine(small_er).prepare()
        assert "precompute/W" in engine.memory.high_water_breakdown()
        assert "precompute/S" in engine.memory.high_water_breakdown()
