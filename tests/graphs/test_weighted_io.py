"""Unit tests for weighted edge-list IO."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs.io import read_weighted_edge_list, write_weighted_edge_list
from repro.graphs.weighted import WeightedDiGraph


class TestReadWeighted:
    def test_basic(self):
        text = "a b 2.5\nb c 0.5\n"
        graph, mapping = read_weighted_edge_list(io.StringIO(text))
        assert graph.num_nodes == 3
        assert graph.edge_weight(mapping["a"], mapping["b"]) == 2.5

    def test_missing_weight_defaults(self):
        graph, mapping = read_weighted_edge_list(
            io.StringIO("x y\nx z 3.0\n"), default_weight=1.5
        )
        assert graph.edge_weight(mapping["x"], mapping["y"]) == 1.5
        assert graph.edge_weight(mapping["x"], mapping["z"]) == 3.0

    def test_duplicate_edges_sum(self):
        graph, mapping = read_weighted_edge_list(io.StringIO("a b 1\na b 2\n"))
        assert graph.edge_weight(mapping["a"], mapping["b"]) == 3.0

    def test_comments_skipped(self):
        graph, _ = read_weighted_edge_list(io.StringIO("# hi\n0 1 1.0\n"))
        assert graph.num_edges == 1

    def test_non_numeric_weight(self):
        with pytest.raises(GraphFormatError):
            read_weighted_edge_list(io.StringIO("a b heavy\n"))

    def test_single_token_line(self):
        with pytest.raises(GraphFormatError):
            read_weighted_edge_list(io.StringIO("lonely\n"))

    def test_file_path(self, tmp_path):
        path = tmp_path / "weighted.txt"
        path.write_text("0 1 4.0\n")
        graph, mapping = read_weighted_edge_list(path)
        assert graph.edge_weight(mapping["0"], mapping["1"]) == 4.0


class TestRoundTrip:
    def test_stream_round_trip(self):
        graph = WeightedDiGraph(4, [(0, 1, 1.25), (2, 3, 0.75), (3, 0, 9.0)])
        buffer = io.StringIO()
        write_weighted_edge_list(graph, buffer)
        buffer.seek(0)
        loaded, mapping = read_weighted_edge_list(buffer)
        # relabelled, but weights survive exactly (repr round-trip)
        assert loaded.num_edges == 3
        np.testing.assert_array_equal(
            np.sort(loaded.edge_weights), [0.75, 1.25, 9.0]
        )

    def test_header(self):
        graph = WeightedDiGraph(2, [(0, 1, 2.0)])
        buffer = io.StringIO()
        write_weighted_edge_list(graph, buffer, header=True)
        assert buffer.getvalue().startswith("# nodes: 2 edges: 1 weighted\n")

    def test_exact_float_round_trip(self):
        weight = 0.1 + 0.2  # not representable prettily
        graph = WeightedDiGraph(2, [(0, 1, weight)])
        buffer = io.StringIO()
        write_weighted_edge_list(graph, buffer)
        buffer.seek(0)
        loaded, _ = read_weighted_edge_list(buffer)
        assert loaded.edge_weights[0] == weight  # repr() is lossless
