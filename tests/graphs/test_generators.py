"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graphs.generators import (
    chung_lu,
    complete,
    erdos_renyi,
    path_graph,
    preferential_attachment,
    random_dag,
    ring,
    rmat,
    star,
)
from repro.graphs.validation import powerlaw_tail_exponent


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi(100, 500, seed=1)
        assert graph.num_nodes == 100
        assert graph.num_edges == 500

    def test_deterministic(self):
        assert erdos_renyi(50, 200, seed=9) == erdos_renyi(50, 200, seed=9)

    def test_different_seeds_differ(self):
        assert erdos_renyi(50, 200, seed=1) != erdos_renyi(50, 200, seed=2)

    def test_no_self_loops_by_default(self):
        graph = erdos_renyi(30, 400, seed=3)
        assert not np.any(graph.edge_sources == graph.edge_targets)

    def test_self_loops_opt_in(self):
        graph = erdos_renyi(10, 90, seed=3, allow_self_loops=True)
        assert graph.num_edges == 90

    def test_too_many_edges_rejected(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi(5, 21, seed=0)

    def test_saturated(self):
        graph = erdos_renyi(5, 20, seed=0)  # all ordered pairs
        assert graph.num_edges == 20

    def test_invalid_counts(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi(0, 1)
        with pytest.raises(InvalidParameterError):
            erdos_renyi(5, -1)


class TestPreferentialAttachment:
    def test_size_and_determinism(self):
        a = preferential_attachment(80, 3, seed=4)
        b = preferential_attachment(80, 3, seed=4)
        assert a == b
        assert a.num_nodes == 80
        # out_degree edges per node (some mirrored), minus the early ramp
        assert a.num_edges >= 3 * 77

    def test_hub_formation(self):
        graph = preferential_attachment(300, 2, seed=5)
        indeg = graph.in_degrees()
        # preferential attachment must concentrate in-degree on hubs
        assert indeg.max() > 5 * max(1, int(np.median(indeg)))

    def test_invalid_out_degree(self):
        with pytest.raises(InvalidParameterError):
            preferential_attachment(10, 0)


class TestChungLu:
    def test_edge_count_and_determinism(self):
        a = chung_lu(200, 1000, seed=6)
        assert a.num_nodes == 200
        assert a.num_edges == 1000
        assert a == chung_lu(200, 1000, seed=6)

    def test_heavy_tail_vs_er(self):
        heavy = chung_lu(2000, 10000, exponent=2.1, seed=7)
        flat = erdos_renyi(2000, 10000, seed=7)
        # ER's in-degree max is near the mean; Chung-Lu's is far above.
        assert heavy.in_degrees().max() > 3 * flat.in_degrees().max()

    def test_invalid_exponent(self):
        with pytest.raises(InvalidParameterError):
            chung_lu(10, 20, exponent=1.0)


class TestRMAT:
    def test_node_count_is_power_of_two(self):
        graph = rmat(8, 2000, seed=8)
        assert graph.num_nodes == 256
        assert graph.num_edges <= 2000

    def test_deterministic(self):
        assert rmat(7, 500, seed=2) == rmat(7, 500, seed=2)

    def test_skew(self):
        graph = rmat(10, 8000, seed=9)
        indeg = graph.in_degrees()
        assert indeg.max() > 10 * max(1.0, indeg.mean())

    def test_invalid_probabilities(self):
        with pytest.raises(InvalidParameterError):
            rmat(5, 10, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            rmat(0, 10)


class TestDeterministicShapes:
    def test_ring(self):
        graph = ring(5)
        assert graph.num_edges == 5
        assert graph.has_edge(4, 0)
        assert graph.in_degrees().tolist() == [1] * 5

    def test_star_inward(self):
        graph = star(4, inward=True)
        assert graph.num_nodes == 5
        assert graph.in_degrees()[0] == 4
        assert graph.out_degrees()[0] == 0

    def test_star_outward(self):
        graph = star(3, inward=False)
        assert graph.out_degrees()[0] == 3

    def test_complete(self):
        graph = complete(4)
        assert graph.num_edges == 12
        assert not graph.has_edge(1, 1)

    def test_path(self):
        graph = path_graph(4)
        assert list(graph.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_path_single_node(self):
        assert path_graph(1).num_edges == 0

    def test_random_dag_is_acyclic(self):
        graph = random_dag(40, 200, seed=10)
        assert graph.num_edges == 200
        # topological by construction: every edge goes up in id
        assert np.all(graph.edge_sources < graph.edge_targets)

    def test_random_dag_capacity_check(self):
        with pytest.raises(InvalidParameterError):
            random_dag(4, 7)  # max is 6


class TestTailExponentHelper:
    def test_powerlaw_graphs_have_finite_exponent(self):
        graph = chung_lu(3000, 15000, exponent=2.3, seed=11)
        exponent = powerlaw_tail_exponent(graph)
        assert 1.0 < exponent < 5.0
