"""Unit tests for the column-normalised transition matrix."""

import numpy as np
import pytest

from repro.datasets.toy import figure1_graph
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.transition import (
    is_column_substochastic,
    row_normalized,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_matches_paper_example(self):
        """The Q printed in Example 3.6, row by row."""
        q_matrix = transition_matrix(figure1_graph()).toarray()
        third = 1.0 / 3.0
        expected = np.array(
            [
                [0, third, 0, third, 0, 0],
                [0, 0, 0, 0, 0, 0],
                [0, third, 0, 0, 0.5, 0],
                [1, 0, 1, 0, 0, 1],
                [0, third, 0, third, 0, 0],
                [0, 0, 0, third, 0.5, 0],
            ]
        )
        np.testing.assert_allclose(q_matrix, expected)

    def test_column_sums_one_or_zero(self, small_powerlaw):
        q_matrix = transition_matrix(small_powerlaw)
        sums = np.asarray(q_matrix.sum(axis=0)).ravel()
        indeg = small_powerlaw.in_degrees()
        np.testing.assert_allclose(sums[indeg > 0], 1.0)
        np.testing.assert_allclose(sums[indeg == 0], 0.0)

    def test_entry_values(self):
        graph = DiGraph(3, [(0, 2), (1, 2)])
        q_matrix = transition_matrix(graph).toarray()
        assert q_matrix[0, 2] == pytest.approx(0.5)
        assert q_matrix[1, 2] == pytest.approx(0.5)

    def test_dangling_zero_policy(self):
        graph = DiGraph(3, [(0, 1)])  # nodes 0 and 2 have no in-edges
        q_matrix = transition_matrix(graph, dangling="zero").toarray()
        np.testing.assert_allclose(q_matrix[:, 0], 0.0)
        np.testing.assert_allclose(q_matrix[:, 2], 0.0)

    def test_dangling_uniform_policy(self):
        graph = DiGraph(3, [(0, 1)])
        q_matrix = transition_matrix(graph, dangling="uniform").toarray()
        np.testing.assert_allclose(q_matrix[:, 0], 1.0 / 3.0)
        np.testing.assert_allclose(q_matrix[:, 2], 1.0 / 3.0)
        sums = q_matrix.sum(axis=0)
        np.testing.assert_allclose(sums, 1.0)

    def test_invalid_policy(self):
        with pytest.raises(InvalidParameterError):
            transition_matrix(DiGraph(2), dangling="teleport")

    def test_empty_graph(self):
        q_matrix = transition_matrix(DiGraph(0))
        assert q_matrix.shape == (0, 0)

    def test_dtype(self):
        q_matrix = transition_matrix(DiGraph(2, [(0, 1)]), dtype=np.float32)
        assert q_matrix.dtype == np.float32


class TestRowNormalized:
    def test_row_sums(self, small_er):
        w_matrix = row_normalized(small_er)
        sums = np.asarray(w_matrix.sum(axis=1)).ravel()
        outdeg = small_er.out_degrees()
        np.testing.assert_allclose(sums[outdeg > 0], 1.0)
        np.testing.assert_allclose(sums[outdeg == 0], 0.0)

    def test_row_normalized_is_transition_of_reverse(self, small_er):
        direct = row_normalized(small_er).toarray()
        via_reverse = transition_matrix(small_er.reverse()).toarray().T
        np.testing.assert_allclose(direct, via_reverse)


class TestSubstochasticCheck:
    def test_transition_is_substochastic(self, small_powerlaw):
        assert is_column_substochastic(transition_matrix(small_powerlaw))

    def test_dense_input(self):
        assert is_column_substochastic(np.array([[0.5, 0.0], [0.5, 0.0]]))

    def test_rejects_super_stochastic(self):
        assert not is_column_substochastic(np.array([[1.0, 0.0], [0.5, 0.0]]))

    def test_rejects_negative(self):
        assert not is_column_substochastic(np.array([[-0.1, 0.0], [0.0, 0.0]]))

    def test_empty(self):
        assert is_column_substochastic(np.zeros((0, 0)))
