"""Unit tests for connectivity utilities."""

import numpy as np
import pytest

from repro.graphs.components import (
    largest_component_fraction,
    num_weakly_connected_components,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, complete, path_graph, ring


class TestWeakComponents:
    def test_single_component(self):
        labels = weakly_connected_components(ring(5))
        assert np.unique(labels).size == 1

    def test_disjoint_parts(self):
        graph = DiGraph(6, [(0, 1), (1, 2), (3, 4)])  # node 5 isolated
        labels = weakly_connected_components(graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert len({labels[0], labels[3], labels[5]}) == 3
        assert num_weakly_connected_components(graph) == 3

    def test_direction_ignored(self):
        graph = DiGraph(3, [(0, 1), (2, 1)])  # no directed path 0 -> 2
        assert num_weakly_connected_components(graph) == 1

    def test_empty_graph(self):
        assert num_weakly_connected_components(DiGraph(0)) == 0

    def test_largest_fraction(self):
        graph = DiGraph(4, [(0, 1), (1, 2)])
        assert largest_component_fraction(graph) == pytest.approx(0.75)
        assert largest_component_fraction(DiGraph(0)) == 0.0

    def test_consistency_with_doubling(self, small_er):
        n = small_er.num_nodes
        doubled = DiGraph(
            2 * n,
            list(small_er.edges()) + [(s + n, t + n) for s, t in small_er.edges()],
        )
        assert num_weakly_connected_components(doubled) == 2 * (
            num_weakly_connected_components(small_er)
        )


class TestStrongComponents:
    def test_ring_is_one_scc(self):
        labels = strongly_connected_components(ring(6))
        assert np.unique(labels).size == 1

    def test_path_is_all_singletons(self):
        labels = strongly_connected_components(path_graph(5))
        assert np.unique(labels).size == 5

    def test_two_cycles_with_bridge(self):
        # cycle {0,1,2}, cycle {3,4}, one-way bridge 2 -> 3
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)])
        labels = strongly_connected_components(graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_complete_graph_single_scc(self):
        labels = strongly_connected_components(complete(5))
        assert np.unique(labels).size == 1

    def test_scc_refines_wcc(self):
        graph = chung_lu(200, 800, seed=71)
        weak = weakly_connected_components(graph)
        strong = strongly_connected_components(graph)
        # two nodes in the same SCC must share a weak component
        for scc in np.unique(strong):
            members = np.flatnonzero(strong == scc)
            assert np.unique(weak[members]).size == 1

    def test_self_loop_singleton(self):
        graph = DiGraph(2, [(0, 0)])
        labels = strongly_connected_components(graph)
        assert labels[0] != labels[1]
