"""Unit tests for networkx interoperability."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.interop import from_networkx, to_networkx
from repro.graphs.weighted import WeightedDiGraph


class TestFromNetworkX:
    def test_directed_unweighted(self):
        nx_graph = nx.DiGraph([("a", "b"), ("b", "c")])
        graph, mapping = from_networkx(nx_graph)
        assert isinstance(graph, DiGraph)
        assert not isinstance(graph, WeightedDiGraph)
        assert graph.has_edge(mapping["a"], mapping["b"])
        assert not graph.has_edge(mapping["b"], mapping["a"])

    def test_undirected_becomes_symmetric(self):
        nx_graph = nx.Graph([(0, 1)])
        graph, mapping = from_networkx(nx_graph)
        assert graph.has_edge(mapping[0], mapping[1])
        assert graph.has_edge(mapping[1], mapping[0])

    def test_weighted_detected(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge("x", "y", weight=2.5)
        nx_graph.add_edge("y", "z")  # missing weight -> 1.0
        graph, mapping = from_networkx(nx_graph)
        assert isinstance(graph, WeightedDiGraph)
        assert graph.edge_weight(mapping["x"], mapping["y"]) == 2.5
        assert graph.edge_weight(mapping["y"], mapping["z"]) == 1.0

    def test_isolated_nodes_kept(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(["a", "b", "c"])
        nx_graph.add_edge("a", "b")
        graph, _ = from_networkx(nx_graph)
        assert graph.num_nodes == 3

    def test_custom_weight_attribute(self):
        nx_graph = nx.DiGraph()
        nx_graph.add_edge(0, 1, cost=3.0)
        graph, mapping = from_networkx(nx_graph, weight="cost")
        assert isinstance(graph, WeightedDiGraph)
        assert graph.edge_weight(mapping[0], mapping[1]) == 3.0


class TestToNetworkX:
    def test_unweighted_round_trip(self, small_er):
        nx_graph = to_networkx(small_er)
        back, mapping = from_networkx(nx_graph)
        assert back == small_er  # dense ids map to themselves

    def test_weighted_round_trip(self):
        graph = WeightedDiGraph(3, [(0, 1, 2.0), (1, 2, 0.5)])
        nx_graph = to_networkx(graph)
        assert nx_graph[0][1]["weight"] == 2.0
        back, _ = from_networkx(nx_graph)
        assert isinstance(back, WeightedDiGraph)
        assert back.edge_weight(1, 2) == 0.5

    def test_isolated_nodes_preserved(self):
        graph = DiGraph(4, [(0, 1)])
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 4


class TestEndToEnd:
    def test_cosimrank_on_networkx_input(self):
        """The advertised workflow: nx graph in, similarities out."""
        from repro.core.index import CSRPlusIndex

        nx_graph = nx.gnp_random_graph(60, 0.1, seed=5, directed=True)
        graph, mapping = from_networkx(nx_graph)
        index = CSRPlusIndex(graph, rank=10).prepare()
        block = index.query([mapping[0], mapping[1]])
        assert block.shape == (60, 2)
        assert np.isfinite(block).all()
