"""Unit tests for weighted graphs and weighted CoSimRank."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.core.index import CSRPlusIndex
from repro.errors import GraphConstructionError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import erdos_renyi
from repro.graphs.transition import is_column_substochastic, transition_matrix
from repro.graphs.weighted import WeightedDiGraph


class TestConstruction:
    def test_basic(self):
        graph = WeightedDiGraph(3, [(0, 1, 2.0), (1, 2, 0.5)])
        assert graph.num_edges == 2
        assert graph.edge_weight(0, 1) == 2.0
        assert graph.edge_weight(1, 0) == 0.0

    def test_duplicates_sum_weights(self):
        graph = WeightedDiGraph(2, [(0, 1, 1.0), (0, 1, 2.5)])
        assert graph.num_edges == 1
        assert graph.edge_weight(0, 1) == 3.5

    def test_non_positive_weight_rejected(self):
        with pytest.raises(GraphConstructionError):
            WeightedDiGraph(2, [(0, 1, 0.0)])
        with pytest.raises(GraphConstructionError):
            WeightedDiGraph(2, [(0, 1, -1.0)])

    def test_non_finite_weight_rejected(self):
        with pytest.raises(GraphConstructionError):
            WeightedDiGraph(2, [(0, 1, float("inf"))])

    def test_from_digraph_unit_weights(self, small_er):
        lifted = WeightedDiGraph.from_digraph(small_er)
        assert lifted.num_edges == small_er.num_edges
        np.testing.assert_array_equal(lifted.edge_weights, 1.0)

    def test_strengths(self):
        graph = WeightedDiGraph(3, [(0, 2, 2.0), (1, 2, 3.0), (2, 0, 1.0)])
        np.testing.assert_allclose(graph.in_strength(), [1.0, 0.0, 5.0])
        np.testing.assert_allclose(graph.out_strength(), [2.0, 3.0, 1.0])

    def test_structural_queries_ignore_weights(self):
        graph = WeightedDiGraph(3, [(0, 2, 2.0), (1, 2, 3.0)])
        assert graph.in_degrees().tolist() == [0, 0, 2]
        assert graph.in_neighbors(2).tolist() == [0, 1]


class TestDerived:
    def test_reverse_preserves_weights(self):
        graph = WeightedDiGraph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        rev = graph.reverse()
        assert rev.edge_weight(1, 0) == 2.0
        assert rev.edge_weight(2, 1) == 3.0

    def test_add_accumulates(self):
        graph = WeightedDiGraph(2, [(0, 1, 1.0)])
        bigger = graph.with_edges_added([(0, 1, 0.5), (1, 0, 2.0)])
        assert bigger.edge_weight(0, 1) == 1.5
        assert bigger.edge_weight(1, 0) == 2.0

    def test_remove(self):
        graph = WeightedDiGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        smaller = graph.with_edges_removed([(0, 1)])
        assert smaller.num_edges == 1
        assert smaller.edge_weight(1, 2) == 2.0

    def test_subgraph_preserves_weights(self):
        graph = WeightedDiGraph(4, [(0, 1, 5.0), (1, 2, 7.0), (2, 3, 9.0)])
        sub = graph.subgraph([1, 2])
        assert sub.edge_weight(0, 1) == 7.0

    def test_equality_includes_weights(self):
        a = WeightedDiGraph(2, [(0, 1, 1.0)])
        b = WeightedDiGraph(2, [(0, 1, 2.0)])
        assert a != b
        assert a == WeightedDiGraph(2, [(0, 1, 1.0)])


class TestWeightedTransition:
    def test_weight_proportional_columns(self):
        graph = WeightedDiGraph(3, [(0, 2, 3.0), (1, 2, 1.0)])
        q = transition_matrix(graph).toarray()
        assert q[0, 2] == pytest.approx(0.75)
        assert q[1, 2] == pytest.approx(0.25)

    def test_substochastic(self):
        rng = np.random.default_rng(6)
        base = erdos_renyi(40, 160, seed=6)
        graph = WeightedDiGraph.from_digraph(base, rng.uniform(0.1, 5.0, 160))
        assert is_column_substochastic(transition_matrix(graph))

    def test_unit_weights_match_binary_graph(self, small_er):
        lifted = WeightedDiGraph.from_digraph(small_er)
        np.testing.assert_allclose(
            transition_matrix(lifted).toarray(),
            transition_matrix(small_er).toarray(),
        )


class TestWeightedCoSimRank:
    def test_csr_plus_runs_on_weighted_graph(self):
        rng = np.random.default_rng(7)
        base = erdos_renyi(50, 200, seed=7)
        graph = WeightedDiGraph.from_digraph(base, rng.uniform(0.5, 2.0, 200))
        exact = ExactCoSimRank(graph).query([1, 2])
        approx = CSRPlusIndex(graph, rank=50, epsilon=1e-12).query([1, 2])
        np.testing.assert_allclose(approx, exact, atol=1e-8)

    def test_weights_change_similarities(self):
        base_edges = [(0, 2), (1, 2), (0, 3), (1, 3)]
        binary = DiGraph(4, base_edges)
        skewed = WeightedDiGraph(
            4, [(0, 2, 10.0), (1, 2, 1.0), (0, 3, 1.0), (1, 3, 10.0)]
        )
        s_binary = ExactCoSimRank(binary).single_pair(2, 3)
        s_skewed = ExactCoSimRank(skewed).single_pair(2, 3)
        # with unit weights nodes 2 and 3 are identical; skewing the
        # weights makes their in-distributions diverge
        assert s_skewed < s_binary
