"""Unit tests for graph statistics helpers."""

import numpy as np
import pytest

from repro.graphs.digraph import DiGraph
from repro.graphs.generators import erdos_renyi, ring, star
from repro.graphs.validation import (
    degree_histogram,
    graph_stats,
    powerlaw_tail_exponent,
)


class TestGraphStats:
    def test_basic_fields(self):
        graph = DiGraph(4, [(0, 1), (0, 2), (1, 2), (2, 2)])
        stats = graph_stats(graph)
        assert stats.num_nodes == 4
        assert stats.num_edges == 4
        assert stats.density == pytest.approx(1.0)
        assert stats.max_in_degree == 3
        assert stats.max_out_degree == 2
        assert stats.num_dangling == 2  # nodes 0 and 3 have in-degree 0
        assert stats.num_sources == 1  # only node 3 has out-degree 0
        assert stats.has_self_loops

    def test_no_self_loops(self, small_er):
        assert not graph_stats(small_er).has_self_loops

    def test_as_row_keys(self):
        row = graph_stats(ring(4)).as_row()
        assert row["n"] == 4
        assert row["m"] == 4
        assert row["m/n"] == 1.0


class TestDegreeHistogram:
    def test_ring_histogram(self):
        hist = degree_histogram(ring(6), "in")
        assert hist.tolist() == [0, 6]

    def test_star_histogram(self):
        hist = degree_histogram(star(5, inward=True), "in")
        assert hist[0] == 5  # leaves have in-degree 0
        assert hist[5] == 1  # hub has in-degree 5

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            degree_histogram(ring(3), "sideways")

    def test_empty_graph(self):
        assert degree_histogram(DiGraph(0)).tolist() == [0]


class TestTailExponent:
    def test_uniform_degrees_give_inf(self):
        # ring: every in-degree is 1, no tail to fit
        assert powerlaw_tail_exponent(ring(10)) == float("inf")

    def test_er_fit_is_finite_on_big_graph(self):
        graph = erdos_renyi(2000, 12000, seed=2)
        assert np.isfinite(powerlaw_tail_exponent(graph))
