"""Unit tests for edge-list IO."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graphs.digraph import DiGraph
from repro.graphs.io import (
    graph_from_labeled_edges,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestParse:
    def test_basic(self):
        graph, mapping = parse_edge_list("0 1\n1 2\n")
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_comments_and_blanks_skipped(self):
        text = "# SNAP header\n\n0\t1\n# another comment\n1\t2\n\n"
        graph, _ = parse_edge_list(text)
        assert graph.num_edges == 2

    def test_string_labels_relabelled(self):
        graph, mapping = parse_edge_list("alice bob\nbob carol\n")
        assert graph.num_nodes == 3
        assert mapping["alice"] == 0
        assert mapping["bob"] == 1
        assert graph.has_edge(mapping["bob"], mapping["carol"])

    def test_non_contiguous_integer_labels_relabelled(self):
        graph, mapping = parse_edge_list("10 500\n500 9999\n")
        assert graph.num_nodes == 3
        assert mapping["10"] == 0

    def test_relabel_false_uses_raw_ids(self):
        graph, mapping = parse_edge_list("0 5\n", relabel=False)
        assert graph.num_nodes == 6
        assert graph.has_edge(0, 5)
        assert mapping[3] == 3

    def test_relabel_false_rejects_strings(self):
        with pytest.raises(GraphFormatError):
            parse_edge_list("a b\n", relabel=False)

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError) as err:
            parse_edge_list("0 1\nonly_one_token\n")
        assert "line 2" in str(err.value)

    def test_extra_columns_ignored(self):
        graph, _ = parse_edge_list("0 1 1.5 timestamp\n")
        assert graph.num_edges == 1

    def test_empty_input(self):
        graph, mapping = parse_edge_list("")
        assert graph.num_nodes == 0
        assert mapping == {}

    def test_custom_comment_prefix(self):
        graph, _ = parse_edge_list("% note\n0 1\n", comment="%")
        assert graph.num_edges == 1


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path, small_er):
        path = tmp_path / "edges.txt"
        write_edge_list(small_er, path)
        loaded, _ = read_edge_list(path, relabel=False)
        # Edge lists cannot encode trailing isolated nodes, so compare
        # against the original restricted to the max referenced id.
        assert list(loaded.edges()) == list(small_er.edges())

    def test_stream_round_trip(self):
        graph = DiGraph(4, [(0, 1), (2, 3), (3, 0)])
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        buffer.seek(0)
        loaded, _ = read_edge_list(buffer, relabel=False)
        assert loaded == graph

    def test_header_written(self):
        buffer = io.StringIO()
        write_edge_list(DiGraph(2, [(0, 1)]), buffer, header=True)
        assert buffer.getvalue().startswith("# nodes: 2 edges: 1\n")

    def test_no_header(self):
        buffer = io.StringIO()
        write_edge_list(DiGraph(2, [(0, 1)]), buffer, header=False)
        assert buffer.getvalue() == "0\t1\n"


class TestLabeledEdges:
    def test_mapping_first_seen_order(self):
        graph, mapping = graph_from_labeled_edges([("x", "y"), ("z", "x")])
        assert mapping == {"x": 0, "y": 1, "z": 2}
        assert graph.has_edge(2, 0)

    def test_with_num_nodes(self):
        graph, mapping = graph_from_labeled_edges([(0, 2)], num_nodes=5)
        assert graph.num_nodes == 5
        assert mapping[4] == 4

    def test_duplicate_labels_single_node(self):
        graph, mapping = graph_from_labeled_edges([("a", "b"), ("a", "b")])
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
