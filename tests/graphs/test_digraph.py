"""Unit tests for the DiGraph substrate."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import GraphConstructionError, InvalidParameterError
from repro.graphs.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph(0)
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.density == 0.0

    def test_nodes_without_edges(self):
        graph = DiGraph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_basic_edges(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(1, 0)

    def test_duplicate_edges_coalesced(self):
        graph = DiGraph(3, [(0, 1), (0, 1), (0, 1), (1, 2)])
        assert graph.num_edges == 2

    def test_self_loops_allowed(self):
        graph = DiGraph(2, [(0, 0), (0, 1)])
        assert graph.num_edges == 2
        assert graph.has_edge(0, 0)

    def test_negative_node_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            DiGraph(-1)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(3, [(0, 3)])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(3, [(-1, 0)])

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphConstructionError):
            DiGraph(3, [(0, 1, 2)])

    def test_from_arrays(self):
        graph = DiGraph.from_arrays(
            4, np.array([0, 1, 2]), np.array([1, 2, 3])
        )
        assert graph.num_edges == 3
        assert graph.has_edge(2, 3)

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(GraphConstructionError):
            DiGraph.from_arrays(4, np.array([0, 1]), np.array([1]))

    def test_from_adjacency_dense(self):
        adj = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
        graph = DiGraph.from_adjacency(adj)
        assert graph.num_edges == 3
        assert graph.has_edge(2, 0)

    def test_from_adjacency_sparse(self):
        adj = sparse.csr_matrix(([1.0], ([0], [2])), shape=(3, 3))
        graph = DiGraph.from_adjacency(adj)
        assert list(graph.edges()) == [(0, 2)]

    def test_from_adjacency_rejects_non_square(self):
        with pytest.raises(GraphConstructionError):
            DiGraph.from_adjacency(np.zeros((2, 3)))


class TestDegreesAndNeighbors:
    def test_degrees(self):
        graph = DiGraph(4, [(0, 1), (0, 2), (1, 2), (3, 2)])
        assert graph.out_degrees().tolist() == [2, 1, 0, 1]
        assert graph.in_degrees().tolist() == [0, 1, 3, 0]

    def test_neighbors_sorted(self):
        graph = DiGraph(5, [(0, 4), (0, 1), (0, 3)])
        assert graph.out_neighbors(0).tolist() == [1, 3, 4]
        assert graph.in_neighbors(4).tolist() == [0]

    def test_neighbors_empty(self):
        graph = DiGraph(3, [(0, 1)])
        assert graph.out_neighbors(2).size == 0
        assert graph.in_neighbors(0).size == 0

    def test_neighbor_out_of_range(self):
        graph = DiGraph(3)
        with pytest.raises(GraphConstructionError):
            graph.out_neighbors(3)

    def test_dangling_nodes(self):
        graph = DiGraph(4, [(0, 1), (1, 2)])
        assert graph.dangling_nodes().tolist() == [0, 3]

    def test_neighbor_lists_match_paper_coo_grouping(self):
        graph = DiGraph(4, [(0, 2), (0, 1), (2, 3)])
        lists = graph.to_neighbor_lists()
        assert lists == {0: [1, 2], 2: [3]}


class TestMatrixViews:
    def test_adjacency_values(self):
        graph = DiGraph(3, [(0, 1), (2, 1)])
        adj = graph.adjacency().toarray()
        expected = np.zeros((3, 3))
        expected[0, 1] = 1
        expected[2, 1] = 1
        np.testing.assert_array_equal(adj, expected)

    def test_adjacency_cached(self):
        graph = DiGraph(3, [(0, 1)])
        assert graph.adjacency() is graph.adjacency()

    def test_csc_matches_csr(self):
        graph = DiGraph(4, [(0, 1), (1, 2), (3, 0)])
        np.testing.assert_array_equal(
            graph.adjacency().toarray(), graph.adjacency_csc().toarray()
        )


class TestDerivedGraphs:
    def test_reverse(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        rev = graph.reverse()
        assert rev.has_edge(1, 0)
        assert rev.has_edge(2, 1)
        assert rev.num_edges == 2

    def test_reverse_involution(self, small_er):
        assert small_er.reverse().reverse() == small_er

    def test_with_edges_added(self):
        graph = DiGraph(3, [(0, 1)])
        bigger = graph.with_edges_added([(1, 2), (0, 1)])
        assert bigger.num_edges == 2
        assert graph.num_edges == 1  # original untouched

    def test_with_edges_removed(self):
        graph = DiGraph(3, [(0, 1), (1, 2)])
        smaller = graph.with_edges_removed([(0, 1), (2, 0)])
        assert list(smaller.edges()) == [(1, 2)]

    def test_add_empty_is_same_object(self):
        graph = DiGraph(3, [(0, 1)])
        assert graph.with_edges_added([]) is graph
        assert graph.with_edges_removed([]) is graph

    def test_subgraph(self):
        graph = DiGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        sub = graph.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert list(sub.edges()) == [(0, 1), (1, 2)]

    def test_subgraph_duplicate_nodes_rejected(self):
        graph = DiGraph(3, [(0, 1)])
        with pytest.raises(InvalidParameterError):
            graph.subgraph([0, 0])


class TestEquality:
    def test_equal_graphs(self):
        a = DiGraph(3, [(0, 1), (1, 2)])
        b = DiGraph(3, [(1, 2), (0, 1)])  # order-independent
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = DiGraph(3, [(0, 1)])
        assert a != DiGraph(3, [(0, 2)])
        assert a != DiGraph(4, [(0, 1)])

    def test_eq_other_type(self):
        assert DiGraph(1) != "graph"


class TestCooView:
    def test_edge_arrays_sorted_and_deduped(self):
        graph = DiGraph(4, [(2, 3), (0, 1), (2, 3), (2, 0)])
        assert graph.edge_sources.tolist() == [0, 2, 2]
        assert graph.edge_targets.tolist() == [1, 0, 3]

    def test_len_is_node_count(self):
        assert len(DiGraph(7)) == 7
