"""Property: the HTTP frontend is bit-identical to in-process serving.

The frontend's whole correctness story (docs/frontend.md) is that a
worker process mmaps the same store bytes and runs the same kernels,
and the wire protocol ships raw array bytes — so for any batch shape,
seed multiset, or k, the answer served over HTTP must equal the answer
from a :class:`~repro.serving.CoSimRankService` over the same
:class:`~repro.sharding.ShardedIndex`, down to the last bit.
Hypothesis searches for a counter-example; both sides are shared
session/module fixtures so the search stays cheap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving import CoSimRankService
from repro.serving.approx import ApproxIndex
from repro.serving.frontend import FrontendClient
from repro.sharding import ShardedIndex

from .conftest import NUM_NODES

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seed_ids = st.integers(min_value=0, max_value=NUM_NODES - 1)
seed_lists = st.lists(seed_ids, min_size=1, max_size=6)  # dups allowed


def _bits(array):
    """Byte view that tolerates non-contiguous blocks (duplicate seeds
    are served as strided views into the deduplicated computation)."""
    return np.ascontiguousarray(array).view(np.uint8)


@pytest.fixture(scope="module")
def client(frontend_url):
    with FrontendClient(frontend_url) as frontend_client:
        yield frontend_client


@pytest.fixture(scope="module")
def in_process(store_path, approx_path, frontend_graph):
    index = ShardedIndex(store_path)
    approx = ApproxIndex.load(approx_path, frontend_graph)
    with CoSimRankService(
        index, approx_index=approx, max_workers=1
    ) as service:
        yield service
    index.close()


@settings(**SETTINGS)
@given(requests=st.lists(seed_lists, min_size=1, max_size=4))
def test_query_round_trip_is_bit_identical(requests, client, in_process):
    got = client.serve_batch(requests)
    want = in_process.serve_batch(requests)
    assert len(got) == len(want)
    for got_block, want_block in zip(got, want):
        assert got_block.dtype == want_block.dtype
        assert got_block.shape == want_block.shape
        assert np.array_equal(
            _bits(got_block), _bits(want_block)
        ), "HTTP round-trip perturbed column bytes"


@settings(**SETTINGS)
@given(
    seeds=seed_lists,
    k=st.integers(min_value=1, max_value=NUM_NODES),
    exclude_self=st.booleans(),
)
def test_topk_round_trip_is_bit_identical(
    seeds, k, exclude_self, client, in_process
):
    got = client.serve_topk(seeds, k, exclude_self=exclude_self)
    want = in_process.serve_topk(seeds, k, exclude_self=exclude_self)
    for got_one, want_one in zip(got, want):
        np.testing.assert_array_equal(got_one.nodes, want_one.nodes)
        assert got_one.scores.dtype == want_one.scores.dtype
        assert np.array_equal(
            _bits(np.asarray(got_one.scores)),
            _bits(np.asarray(want_one.scores)),
        )


@settings(**SETTINGS)
@given(seeds=seed_lists)
def test_approx_tier_round_trips_outcome_metadata(seeds, client, in_process):
    """Approx answers (sketched, not exact) must still match in-process
    bit-for-bit, and the tier label must survive the wire."""
    got = client.serve_batch_detailed([seeds], quality="approx")
    want = in_process.serve_batch_detailed([seeds], quality="approx")
    for got_outcome, want_outcome in zip(got.outcomes, want.outcomes):
        assert got_outcome.tier == want_outcome.tier
        assert got_outcome.ok and want_outcome.ok
        assert np.array_equal(
            _bits(got_outcome.result),
            _bits(want_outcome.result),
        )
