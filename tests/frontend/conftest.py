"""Shared fixtures for the frontend suite.

One sharded store and one running HTTP frontend per test session:
worker processes cost real startup time, so the suite shares a single
:class:`~repro.serving.frontend.BackgroundFrontend` and keeps every
test read-only against it (tests that mutate state — faults, crashes,
publishes — clean up after themselves or build their own).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CSRPlusConfig
from repro.graphs.generators import chung_lu
from repro.serving.approx import ApproxIndex
from repro.serving.frontend import BackgroundFrontend, FrontendConfig
from repro.sharding import build_sharded_store

NUM_NODES = 150
RANK = 5


@pytest.fixture(scope="session")
def frontend_graph():
    return chung_lu(NUM_NODES, 700, seed=11)


@pytest.fixture(scope="session")
def store_path(tmp_path_factory, frontend_graph):
    root = tmp_path_factory.mktemp("frontend-store")
    store = build_sharded_store(
        frontend_graph,
        root / "graph.shards",
        num_shards=3,
        config=CSRPlusConfig(rank=RANK),
    )
    return store.path


@pytest.fixture(scope="session")
def approx_path(tmp_path_factory, frontend_graph):
    """A saved sketch replica so the approx tier is live over HTTP."""
    path = tmp_path_factory.mktemp("frontend-approx") / "approx.npz"
    ApproxIndex.for_rank(frontend_graph, RANK).save(path)
    return path


@pytest.fixture(scope="session")
def frontend(store_path, frontend_graph, approx_path):
    """A live HTTP frontend with 2 workers, shared across the session."""
    background = BackgroundFrontend(
        store_path,
        config=FrontendConfig(workers=2, coalesce_window_s=0.0),
        graph=frontend_graph,
        approx_path=approx_path,
    )
    with background:
        yield background


@pytest.fixture(scope="session")
def frontend_url(frontend):
    return frontend.url


@pytest.fixture
def rng():
    return np.random.default_rng(4242)
