"""Graceful shutdown: drain semantics, SIGTERM, no orphaned workers.

The drain contract (docs/frontend.md): on SIGTERM (or an explicit
``drain()``) the server immediately starts answering *new* requests
with 503 while every request already in flight runs to completion; only
then does it close the listener and shut the worker pool down, so a
drained server leaves no worker processes behind.  Each test carries a
``timeout`` marker so a hung drain fails fast under pytest-timeout in
CI instead of wedging the lane.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serving.frontend import (
    BackgroundFrontend,
    FrontendClient,
    FrontendConfig,
)


def _pid_alive(pid: int) -> bool:
    """True while ``pid`` is a live (non-zombie) process."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().rsplit(")", 1)[1].split()[0] != "Z"
    except OSError:
        return False


def _wait_pids_gone(pids, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not any(_pid_alive(pid) for pid in pids):
            return True
        time.sleep(0.05)
    return False


@pytest.mark.timeout(120)
class TestBackgroundDrain:
    def test_drain_finishes_inflight_rejects_new_kills_workers(
        self, store_path
    ):
        background = BackgroundFrontend(
            store_path,
            config=FrontendConfig(workers=1, coalesce_window_s=0.0),
        )
        url = background.start()
        try:
            with FrontendClient(url) as client:
                pids = client.healthz()["worker_pids"]
                assert pids and all(_pid_alive(pid) for pid in pids)
                # make the first (cold) query slow: each of the 3 shard
                # loads sleeps, holding the request in flight while we
                # drain around it
                client.arm_faults([
                    {"site": "shard.read", "kind": "delay",
                     "seconds": 0.8, "times": 3},
                ])

                slow_result = {}

                def slow_query():
                    with FrontendClient(url) as slow_client:
                        batch = slow_client.serve_batch_detailed([[0, 1]])
                    slow_result["ok"] = all(
                        outcome.ok for outcome in batch.outcomes
                    )

                query_thread = threading.Thread(target=slow_query)
                query_thread.start()
                time.sleep(0.4)  # let the slow request reach a worker

                drain_thread = threading.Thread(
                    target=background.drain, kwargs={"timeout_s": 60.0}
                )
                drain_thread.start()
                time.sleep(0.3)  # let the draining flag flip

                # new requests during the drain are shed with 503
                host = url.split("://", 1)[1]
                conn = http.client.HTTPConnection(host, timeout=10)
                try:
                    conn.request(
                        "POST", "/v1/query",
                        body=json.dumps({"seeds": [5]}).encode(),
                    )
                    response = conn.getresponse()
                    assert response.status == 503
                    assert (
                        json.loads(response.read())["error"]["type"]
                        == "ServiceUnavailable"
                    )
                finally:
                    conn.close()

                query_thread.join(timeout=60)
                drain_thread.join(timeout=60)
                assert not query_thread.is_alive()
                assert not drain_thread.is_alive()
                # the in-flight request was answered, not dropped
                assert slow_result.get("ok") is True

            # the listener is gone: fresh connections are refused
            with pytest.raises(OSError):
                probe = http.client.HTTPConnection(host, timeout=5)
                try:
                    probe.request("GET", "/healthz")
                    probe.getresponse()
                finally:
                    probe.close()

            # and no worker process survives the drain
            assert _wait_pids_gone(pids), f"orphaned workers: {pids}"
        finally:
            background.close()

    def test_drain_is_idempotent_and_close_safe(self, store_path):
        background = BackgroundFrontend(
            store_path,
            config=FrontendConfig(workers=1, coalesce_window_s=0.0),
        )
        url = background.start()
        with FrontendClient(url) as client:
            pids = client.healthz()["worker_pids"]
        background.drain(timeout_s=30.0)
        background.drain(timeout_s=30.0)  # second drain is a no-op
        background.close()
        background.close()  # close after drain is safe too
        assert _wait_pids_gone(pids)


@pytest.mark.timeout(180)
class TestSigtermEndToEnd:
    def test_cli_server_drains_on_sigterm(self, store_path, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath("src")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--shards", str(store_path),
                "--workers", "2", "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            ready_line = process.stdout.readline()
            ready = json.loads(ready_line)
            assert ready["ready"] is True
            assert len(ready["workers"]) == 2

            with FrontendClient(ready["url"]) as client:
                health = client.healthz()
                pids = health["worker_pids"]
                assert len(pids) == 2
                assert all(_pid_alive(pid) for pid in pids)
                block = client.serve_batch([[0, 1, 2]])[0]
                assert block.shape == (ready["num_nodes"], 3)

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=60)
            assert code == 0, process.stderr.read()
            assert "drained" in process.stderr.read()
            # the whole tree is gone: server and both workers
            assert _wait_pids_gone(pids + [process.pid]), (
                "worker processes survived SIGTERM drain"
            )
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
