"""End-to-end HTTP behaviour of the frontend server."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.errors import DeadlineExceeded, InvalidParameterError
from repro.serving import CoSimRankService, loadgen_slos, run_load
from repro.serving import LoadProfile, build_schedule
from repro.serving.frontend import FrontendClient
from repro.sharding import ShardedIndex


def _raw(url: str, method: str, path: str, body: bytes = b"",
         headers=None) -> "tuple[int, dict, bytes]":
    host = url.split("://", 1)[1]
    conn = http.client.HTTPConnection(host, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def client(frontend_url):
    with FrontendClient(frontend_url) as frontend_client:
        yield frontend_client


@pytest.fixture(scope="module")
def cold_frontend(store_path):
    """A private frontend whose dispatcher cache is never warmed.

    Deadline tests need cache misses: the shared session frontend has
    been hammered by the property suite, and a fully-cached request
    completes before the deadline check can fire (by design).
    """
    from repro.serving.frontend import BackgroundFrontend, FrontendConfig

    background = BackgroundFrontend(
        store_path, config=FrontendConfig(workers=1, coalesce_window_s=0.0)
    )
    with background:
        yield background


@pytest.fixture(scope="module")
def in_process(store_path):
    """The in-process service over the SAME store the workers mmap.

    That is the bit-identity contract: same bytes, same kernels, so
    moving the computation into worker processes and the answer across
    HTTP must change nothing.  (A monolithic in-RAM prepare is only
    atol-equal to the out-of-core store build — different float
    accumulation order — so it is deliberately not the reference here.)
    """
    index = ShardedIndex(store_path)
    with CoSimRankService(index, max_workers=1) as service:
        yield service
    index.close()


class TestQueryRoutes:
    def test_single_request_matches_in_process_bit_exactly(
        self, client, in_process
    ):
        seeds = [2, 71, 149]
        got = client.serve_batch([seeds])[0]
        want = in_process.serve_batch([seeds])[0]
        assert got.dtype == want.dtype
        assert np.array_equal(got, want), (
            "the HTTP round-trip must not perturb a single bit"
        )

    def test_multi_request_batch_and_request_ids(self, client):
        batch = client.serve_batch_detailed([[1, 2], [2, 3], [1]])
        assert len(batch.outcomes) == 3
        assert all(outcome.ok for outcome in batch.outcomes)
        assert batch.batch_id is not None
        ids = [outcome.request_id for outcome in batch.outcomes]
        assert len(set(ids)) == 3
        assert all(
            request_id.startswith(batch.batch_id) for request_id in ids
        )

    def test_topk_matches_in_process(self, client, in_process):
        got = client.serve_topk([5, 9], 4)
        want = in_process.serve_topk([5, 9], 4)
        for got_one, want_one in zip(got, want):
            assert np.array_equal(got_one.nodes, want_one.nodes)
            assert np.array_equal(got_one.scores, want_one.scores)

    def test_tiny_deadline_maps_to_504(self, cold_frontend):
        status, _, body = _raw(
            cold_frontend.url, "POST", "/v1/query",
            json.dumps({
                "requests": [[0, 1, 2, 3]], "deadline_ms": 0.001,
            }).encode(),
        )
        assert status == 504
        decoded = json.loads(body)
        assert all(
            outcome["error"]["type"] == "DeadlineExceeded"
            for outcome in decoded["outcomes"]
        )

    def test_client_surfaces_deadline_as_typed_outcome(self, cold_frontend):
        with FrontendClient(cold_frontend.url) as cold_client:
            batch = cold_client.serve_batch_detailed(
                [[4, 5, 6]], deadline_s=1e-6
            )
        assert isinstance(batch.outcomes[0].error, DeadlineExceeded)


class TestStatusMapping:
    def test_bad_json_is_400(self, frontend_url):
        status, _, body = _raw(frontend_url, "POST", "/v1/query", b"{nope")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "InvalidParameterError"

    def test_missing_seeds_is_400(self, frontend_url):
        status, _, _ = _raw(frontend_url, "POST", "/v1/query", b"{}")
        assert status == 400

    def test_bad_quality_is_400(self, frontend_url):
        status, _, _ = _raw(
            frontend_url, "POST", "/v1/query",
            json.dumps({"seeds": [0], "quality": "psychic"}).encode(),
        )
        assert status == 400

    def test_unknown_route_is_404(self, frontend_url):
        status, _, _ = _raw(frontend_url, "GET", "/v2/query")
        assert status == 404

    def test_wrong_method_is_405(self, frontend_url):
        status, _, _ = _raw(frontend_url, "POST", "/metrics")
        assert status == 405

    def test_client_raises_invalid_parameter(self, client):
        with pytest.raises(InvalidParameterError):
            client.serve_topk([0], 0)


class TestIntrospection:
    def test_healthz_shape(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["num_nodes"] == 150
        assert health["workers_alive"] == 2
        assert health["protocol"].startswith("csrplus-frontend/")

    def test_metrics_scrape_merges_all_processes(self, client):
        client.serve_batch([[0, 1]])  # ensure some traffic
        text = client.metrics_text()
        # dispatcher-side families
        assert "csrplus_frontend_http_requests_total" in text
        assert "csrplus_serve_requests_total" in text
        # worker-side families, one series per worker label
        assert 'csrplus_worker_tasks_total{worker="0"}' in text
        # a family must appear exactly once however many registries
        # carried samples for it
        assert text.count("# TYPE csrplus_worker_tasks_total counter") == 1

    def test_coalescer_counts_merged_requests(self, client):
        before = client.metrics_text()
        client.serve_batch([[10], [11]])
        after = client.metrics_text()

        def value(text, name):
            for line in text.splitlines():
                if line.startswith(name + " "):
                    return float(line.split()[-1])
            return 0.0

        assert (
            value(after, "csrplus_frontend_coalesced_batches_total")
            > value(before, "csrplus_frontend_coalesced_batches_total")
        )


class TestLoadgenOverHttp:
    def test_run_load_drives_the_frontend_unchanged(self, client):
        profile = LoadProfile(requests=20, qps=500.0, seeds_per_request=2,
                              seed=3)
        schedule = build_schedule(profile, 150)
        report = run_load(
            client,
            schedule,
            slos=loadgen_slos(availability=0.9),
        )
        assert report.outcomes["ok"] == 20
        assert report.slo_ok is True

    def test_cli_loadgen_url(self, frontend_url, capsys):
        from repro.cli import main

        code = main([
            "loadgen", "--url", frontend_url, "--requests", "10",
            "--qps", "500", "--slo-availability", "0.5", "--fail-on-slo",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcomes"]["ok"] == 10
        assert payload["url"] == frontend_url

    def test_cli_loadgen_url_rejects_mutate_every(self, frontend_url):
        from repro.cli import main

        assert main([
            "loadgen", "--url", frontend_url, "--requests", "5",
            "--mutate-every", "2",
        ]) == 1  # typed InvalidParameterError -> exit 1
