"""WorkerPool: bit-identity, crash recovery, versioning, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, WorkerCrashed
from repro.serving.frontend import WorkerPool
from repro.serving.frontend.metrics import merge_metric_dicts
from repro.sharding import ShardedIndex


@pytest.fixture(scope="module")
def pool(store_path):
    with WorkerPool(store_path, 2) as worker_pool:
        yield worker_pool


@pytest.fixture(scope="module")
def reference(store_path):
    index = ShardedIndex(store_path)
    yield index
    index.close()


class TestBitIdentity:
    def test_columns_match_in_process_exactly(self, pool, reference):
        seeds = [0, 7, 93, 149]
        got = pool.columns(0, seeds, "exact")
        want = reference.query_columns(seeds, mode="exact")
        assert got.dtype == want.dtype
        assert np.array_equal(got, want), (
            "a column served by a worker process must be bit-identical "
            "to the in-process kernel"
        )

    def test_topk_matches_in_process_exactly(self, pool, reference):
        from repro.core.topk import top_k_blockwise

        seeds = [3, 42]
        got = pool.topk(0, seeds, 5, True, "exact")
        want = top_k_blockwise(reference, seeds, 5, exclude_self=True,
                               mode="exact")
        for got_one, want_one in zip(got, want):
            assert np.array_equal(got_one.nodes, want_one.nodes)
            assert np.array_equal(got_one.scores, want_one.scores)

    def test_gather_matches_store_rows(self, pool, reference):
        rows = np.array([0, 10, 149])
        assert np.array_equal(
            pool.gather(0, "z", rows), reference.gather_z_rows(rows)
        )
        assert np.array_equal(
            pool.gather(0, "u", rows), reference.gather_u_rows(rows)
        )


class TestDescribe:
    def test_describe_reports_store_shape(self, pool, reference):
        meta = pool.describe()
        assert meta["num_nodes"] == reference.num_nodes
        assert meta["dtype"] == str(np.dtype(reference.dtype))
        assert meta["config"]["rank"] == reference.config.rank
        assert meta["versions"] == [0]
        assert meta["has_approx"] is False


class TestErrors:
    def test_worker_errors_come_back_typed(self, pool):
        with pytest.raises(InvalidParameterError):
            pool.columns(99, [0], "exact")  # unpublished version

    def test_crash_is_detected_respawned_and_typed(self, store_path):
        with WorkerPool(store_path, 1) as pool:
            before = pool.worker_pids()
            with pytest.raises(WorkerCrashed):
                pool.submit("crash")
            # the pool replaced the dead process before raising, so the
            # very next task lands on a healthy worker
            block = pool.columns(0, [1], "exact")
            assert block.shape[1] == 1
            assert pool.respawns == 1
            assert pool.worker_pids() != before
            assert pool.alive_workers() == 1


class TestMetrics:
    def test_snapshots_merge_to_per_worker_series(self, pool):
        pool.columns(0, [0, 1], "exact")
        snapshots = pool.metrics_snapshots()
        assert len(snapshots) >= 1
        merged = merge_metric_dicts(snapshots)
        families = {f["name"]: f for f in merged["metrics"]}
        tasks = families["csrplus_worker_tasks_total"]
        workers_seen = {
            sample["labels"]["worker"] for sample in tasks["samples"]
        }
        assert workers_seen <= {"0", "1"}
        assert sum(s["value"] for s in tasks["samples"]) >= 1


class TestValidation:
    def test_zero_workers_rejected(self, store_path):
        with pytest.raises(InvalidParameterError):
            WorkerPool(store_path, 0)

    def test_approx_path_requires_graph(self, store_path):
        with pytest.raises(InvalidParameterError):
            WorkerPool(store_path, 1, approx_path="/nope.approx.npz")

    def test_submit_after_close_rejected(self, store_path):
        pool = WorkerPool(store_path, 1)
        pool.close()
        with pytest.raises(InvalidParameterError):
            pool.columns(0, [0], "exact")
