"""The wire protocol round-trips bit-identically (docs/frontend.md)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topk import TopKResult
from repro.errors import (
    ColumnComputeFailed,
    DeadlineExceeded,
    IndexCorrupted,
    InvalidParameterError,
    ReproError,
    ServiceOverloaded,
    ShardCorrupted,
    WorkerCrashed,
)
from repro.serving.frontend.protocol import (
    decode_array,
    decode_batch_result,
    decode_topk,
    encode_array,
    encode_batch_result,
    encode_topk,
    error_from_wire,
    error_to_wire,
)
from repro.serving.results import BatchResult, RequestOutcome


class TestArrayEnvelope:
    @pytest.mark.parametrize("dtype", ["float64", "float32", "int64"])
    def test_round_trip_is_bit_identical(self, dtype):
        rng = np.random.default_rng(7)
        array = rng.standard_normal((40, 3)).astype(dtype)
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == array.dtype
        assert np.array_equal(
            decoded.view(np.uint8), array.view(np.uint8)
        ), "byte-level mismatch through the wire"

    def test_fortran_order_is_preserved(self):
        array = np.asfortranarray(np.arange(12.0).reshape(4, 3))
        envelope = encode_array(array)
        assert envelope["order"] == "F"
        decoded = decode_array(envelope)
        assert decoded.flags.f_contiguous
        assert np.array_equal(decoded, array)

    def test_special_floats_survive(self):
        array = np.array([np.nan, np.inf, -np.inf, -0.0, 1e-308])
        decoded = decode_array(encode_array(array))
        assert np.array_equal(
            decoded.view(np.uint8), array.view(np.uint8)
        )

    def test_decoded_array_is_writable(self):
        decoded = decode_array(encode_array(np.arange(3.0)))
        decoded[0] = 99.0  # frombuffer views are read-only; copies must not be

    def test_byte_count_mismatch_raises(self):
        envelope = encode_array(np.arange(4.0))
        envelope["shape"] = [5]
        with pytest.raises(InvalidParameterError):
            decode_array(envelope)

    def test_malformed_envelope_raises(self):
        with pytest.raises(InvalidParameterError):
            decode_array({"dtype": "float64"})


class TestTopKEnvelope:
    def test_round_trip(self):
        result = TopKResult(
            nodes=np.array([3, 1, 7]),
            scores=np.array([0.9, 0.5, 0.1]),
            candidates_scored=42,
            blocks_scanned=4,
            blocks_skipped=2,
        )
        decoded = decode_topk(encode_topk(result))
        assert np.array_equal(decoded.nodes, result.nodes)
        assert np.array_equal(decoded.scores, result.scores)
        assert decoded.candidates_scored == 42
        assert decoded.blocks_scanned == 4
        assert decoded.blocks_skipped == 2


class TestErrorWire:
    @pytest.mark.parametrize("error", [
        DeadlineExceeded(0.5, 0.7, completed_seeds=3, cancelled_seeds=2),
        ServiceOverloaded(10, 7, 8),
        ShardCorrupted("/x/store", 2, "sha mismatch"),
        IndexCorrupted("/x/index.npz", "truncated"),
        WorkerCrashed(3, "exit code 13"),
        InvalidParameterError("k must be >= 1"),
    ])
    def test_typed_round_trip(self, error):
        rebuilt = error_from_wire(error_to_wire(error))
        assert type(rebuilt) is type(error)

    def test_deadline_fields_survive(self):
        error = DeadlineExceeded(0.5, 0.7, completed_seeds=3, cancelled_seeds=2)
        rebuilt = error_from_wire(error_to_wire(error))
        assert rebuilt.deadline_seconds == 0.5
        assert rebuilt.elapsed_seconds == 0.7
        assert rebuilt.completed_seeds == 3
        assert rebuilt.cancelled_seeds == 2

    def test_column_compute_failed_keeps_seed_and_cause(self):
        error = ColumnComputeFailed(17, "poisoned shard")
        error.__cause__ = OSError("EIO")
        rebuilt = error_from_wire(error_to_wire(error))
        assert isinstance(rebuilt, ColumnComputeFailed)
        assert rebuilt.seed == 17

    def test_unknown_type_degrades_to_repro_error(self):
        rebuilt = error_from_wire({"type": "FutureError", "message": "hi"})
        assert type(rebuilt) is ReproError
        assert "FutureError" in str(rebuilt)


class TestBatchEnvelope:
    def _batch(self):
        return BatchResult(
            outcomes=[
                RequestOutcome(
                    result=np.arange(6.0).reshape(3, 2),
                    request_id="b1.0", tier="exact",
                ),
                RequestOutcome(
                    error=DeadlineExceeded(0.1, 0.2),
                    request_id="b1.1", tier="exact",
                ),
                RequestOutcome(
                    result=np.ones((3, 1)), request_id="b1.2", tier="approx",
                ),
            ],
            retries=2,
            failed_seeds={4: ColumnComputeFailed(4, "bad")},
            cancelled_seeds=(9,),
            batch_id="b1",
        )

    def test_round_trip(self):
        decoded = decode_batch_result(encode_batch_result(self._batch()))
        assert decoded.batch_id == "b1"
        assert decoded.retries == 2
        assert decoded.cancelled_seeds == (9,)
        assert set(decoded.failed_seeds) == {4}
        assert decoded.outcomes[0].ok
        assert np.array_equal(
            decoded.outcomes[0].result, np.arange(6.0).reshape(3, 2)
        )
        assert decoded.outcomes[0].request_id == "b1.0"
        assert isinstance(decoded.outcomes[1].error, DeadlineExceeded)
        assert decoded.outcomes[2].tier == "approx"

    def test_positions_slice_the_outcomes(self):
        wire = encode_batch_result(self._batch(), positions=[2, 0])
        decoded = decode_batch_result(wire)
        assert len(decoded.outcomes) == 2
        assert decoded.outcomes[0].request_id == "b1.2"
        assert decoded.outcomes[1].request_id == "b1.0"
