"""Fault injection over HTTP: the frontend degrades, never dies.

``POST /admin/faults`` arms a :class:`repro.testing.faults.FaultPlan`
inside every worker process, so the same chaos seams the in-process
suite drives (``shard.read``) can be exercised across the process
boundary.  The contract under fire: errors come back as *typed wire
outcomes* on a 200/504, the server process stays healthy, and a crashed
worker is respawned before the next request needs it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.frontend import BackgroundFrontend, FrontendClient, FrontendConfig

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]


@pytest.fixture()
def chaos_client(store_path):
    """A private frontend per test: faults and crashes must not leak
    into the shared session server."""
    background = BackgroundFrontend(
        store_path,
        config=FrontendConfig(workers=1, coalesce_window_s=0.0),
    )
    with background:
        with FrontendClient(background.url) as client:
            yield client


class TestShardReadFaults:
    def test_single_fault_is_absorbed_by_retry(self, chaos_client):
        # ShardedIndex retries a failed shard read once internally, so
        # one injected failure must be invisible to the caller
        chaos_client.arm_faults([
            {"site": "shard.read", "kind": "fail", "times": 1,
             "exc": "OSError", "message": "injected EIO"},
        ])
        block = chaos_client.serve_batch([[0, 1]])[0]
        assert block.shape[1] == 2
        assert np.all(np.isfinite(block))

    def test_persistent_fault_yields_typed_outcomes_not_500(
        self, chaos_client
    ):
        chaos_client.arm_faults([
            {"site": "shard.read", "kind": "fail", "times": 1_000_000,
             "exc": "OSError", "message": "injected EIO"},
        ])
        batch = chaos_client.serve_batch_detailed([[3, 4], [5]])
        assert all(not outcome.ok for outcome in batch.outcomes)
        for outcome in batch.outcomes:
            assert outcome.error is not None
            assert type(outcome.error).__name__ in (
                "ColumnComputeFailed", "ShardCorrupted",
            )
        # the server itself is unharmed and says so
        assert chaos_client.healthz()["status"] == "ok"

    def test_clearing_faults_restores_service(self, chaos_client):
        chaos_client.arm_faults([
            {"site": "shard.read", "kind": "fail", "times": 1_000_000,
             "exc": "OSError", "message": "injected EIO"},
        ])
        broken = chaos_client.serve_batch_detailed([[7]])
        assert not broken.outcomes[0].ok
        chaos_client.clear_faults()
        healed = chaos_client.serve_batch_detailed([[7]])
        assert healed.outcomes[0].ok
        assert healed.outcomes[0].result.shape[1] == 1


class TestWorkerCrash:
    def test_crash_respawns_and_next_request_succeeds(self, chaos_client):
        before = chaos_client.healthz()
        assert before["workers_alive"] == 1
        chaos_client.crash_worker()
        # the very next query lands on the respawned worker
        block = chaos_client.serve_batch([[2, 9]])[0]
        assert block.shape[1] == 2
        after = chaos_client.healthz()
        assert after["workers_alive"] == 1
        assert after["worker_pids"] != before["worker_pids"]

    def test_crash_respawn_is_visible_in_metrics(self, chaos_client):
        chaos_client.crash_worker()
        chaos_client.serve_batch([[1]])  # force the respawn to be used
        text = chaos_client.metrics_text()
        for line in text.splitlines():
            if line.startswith("csrplus_frontend_worker_respawns_total "):
                assert float(line.split()[-1]) >= 1.0
                break
        else:
            pytest.fail("respawn counter missing from /metrics")
