"""Behavioural tests for CoSimRankService (single-threaded paths)."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, QueryError
from repro.serving import CoSimRankService
from repro.serving.scheduler import BatchPlan, chunk_seeds, plan_batch


@pytest.fixture
def index(small_er) -> CSRPlusIndex:
    return CSRPlusIndex(small_er, rank=6).prepare()


class TestExactness:
    def test_query_matches_index_bitwise(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            for request in ([0], [3, 7, 3], list(range(10))):
                assert np.array_equal(service.query(request), index.query(request))

    def test_cache_disabled_passthrough(self, index):
        with CoSimRankService(index, cache_columns=0, max_workers=1) as service:
            request = [1, 5, 9]
            first = service.query(request)
            second = service.query(request)
            assert np.array_equal(first, index.query(request))
            assert np.array_equal(first, second)
            stats = service.stats()
            assert stats.hits == 0
            assert stats.misses == 6  # 3 distinct seeds, both passes
            assert stats.cached_columns == 0

    def test_chunk_size_never_changes_values(self, index):
        request = list(range(20))
        expected = index.query(request)
        for chunk_size in (1, 3, 7, 64):
            with CoSimRankService(
                index, chunk_size=chunk_size, max_workers=1, cache_columns=0
            ) as service:
                assert np.array_equal(service.query(request), expected)

    def test_float32_index_served_exactly(self, small_er):
        index32 = CSRPlusIndex(small_er, rank=6, dtype="float32").prepare()
        with CoSimRankService(index32, max_workers=1) as service:
            block = service.query([2, 4])
            assert block.dtype == np.float32
            assert np.array_equal(block, index32.query([2, 4]))


class TestBatching:
    def test_batch_output_order_and_shapes(self, index):
        requests = [[5], [1, 2, 3], [2, 5, 2]]
        with CoSimRankService(index, max_workers=1) as service:
            results = service.serve_batch(requests)
        assert [block.shape for block in results] == [(60, 1), (60, 3), (60, 3)]
        for request, block in zip(requests, results):
            assert np.array_equal(block, index.query(request))

    def test_batch_deduplicates_across_requests(self, index):
        requests = [[1, 2], [2, 3], [3, 1]]
        with CoSimRankService(index, max_workers=1) as service:
            service.serve_batch(requests)
            stats = service.stats()
        assert stats.misses == 3      # seeds {1, 2, 3} computed once
        assert stats.hits == 0
        assert stats.seeds_requested == 6
        assert stats.unique_seeds == 3

    def test_warm_batch_is_all_hits(self, index):
        requests = [[1, 2], [3]]
        with CoSimRankService(index, max_workers=1) as service:
            service.serve_batch(requests)
            service.serve_batch(requests)
            stats = service.stats()
        assert (stats.hits, stats.misses) == (3, 3)
        assert stats.batches == 2
        assert stats.requests == 4
        assert stats.hits + stats.misses == stats.unique_seeds

    def test_empty_batch_returns_empty_list(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            assert service.serve_batch([]) == []
            assert service.stats().batches == 1


class TestStatsAndLifecycle:
    def test_bytes_cached_matches_occupancy(self, index):
        with CoSimRankService(index, cache_columns=8, max_workers=1) as service:
            service.query(list(range(12)))  # 12 misses -> 4 evictions
            stats = service.stats()
        assert stats.evictions == 4
        assert stats.cached_columns == 8
        assert stats.bytes_cached == 8 * index.num_nodes * 8
        assert stats.cache_capacity == 8

    def test_phase_timings_accumulate(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            service.query([0, 1])
            stats = service.stats()
        assert stats.compute_seconds > 0.0
        assert stats.lookup_seconds >= 0.0
        assert stats.assemble_seconds >= 0.0
        payload = stats.as_dict()
        assert payload["hit_rate"] == stats.hit_rate

    def test_clear_cache_forces_recompute(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            first = service.query([4])
            service.clear_cache()
            second = service.query([4])
            stats = service.stats()
        assert np.array_equal(first, second)
        assert stats.misses == 2
        assert stats.hits == 0

    def test_close_is_idempotent(self, index):
        service = CoSimRankService(index, max_workers=2)
        service.query([0])
        service.close()
        service.close()


class TestValidation:
    def test_out_of_range_seed_rejected(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            with pytest.raises(QueryError):
                service.query([0, index.num_nodes])

    def test_empty_request_rejected(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            with pytest.raises(QueryError):
                service.serve_batch([[0], []])

    def test_bad_construction_parameters(self, index):
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, chunk_size=0)
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, max_workers=0)
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, cache_columns=-1)

    def test_unprepared_index_is_prepared_on_construction(self, small_er):
        index = CSRPlusIndex(small_er, rank=4)
        assert not index.is_prepared
        with CoSimRankService(index, max_workers=1) as service:
            assert index.is_prepared
            assert np.array_equal(service.query([0]), index.query([0]))


class TestScheduler:
    def test_plan_batch_coalesces_and_sorts(self):
        plan = plan_batch([[3, 1], [1, 5]], num_nodes=10)
        assert isinstance(plan, BatchPlan)
        assert [ids.tolist() for ids in plan.request_ids] == [[3, 1], [1, 5]]
        assert plan.unique_seeds.tolist() == [1, 3, 5]
        assert plan.seeds_requested == 4
        assert plan.num_requests == 2

    def test_plan_batch_validates_each_request(self):
        with pytest.raises(QueryError):
            plan_batch([[0], [99]], num_nodes=10)

    def test_chunk_seeds_partitions_exactly(self):
        chunks = chunk_seeds(list(range(10)), 4)
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert chunk_seeds([], 4) == []
        with pytest.raises(InvalidParameterError):
            chunk_seeds([1], 0)
