"""Behavioural tests for CoSimRankService (single-threaded paths)."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.errors import InvalidParameterError, QueryError
from repro.serving import CoSimRankService
from repro.serving.scheduler import (
    GEMM_MIN_CHUNK,
    BatchPlan,
    chunk_seeds,
    effective_chunk_size,
    plan_batch,
)


@pytest.fixture
def index(small_er) -> CSRPlusIndex:
    return CSRPlusIndex(small_er, rank=6).prepare()


class TestExactness:
    def test_query_matches_index_bitwise(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            for request in ([0], [3, 7, 3], list(range(10))):
                assert np.array_equal(service.query(request), index.query(request))

    def test_cache_disabled_passthrough(self, index):
        with CoSimRankService(index, cache_columns=0, max_workers=1) as service:
            request = [1, 5, 9]
            first = service.query(request)
            second = service.query(request)
            assert np.array_equal(first, index.query(request))
            assert np.array_equal(first, second)
            stats = service.stats()
            assert stats.hits == 0
            assert stats.misses == 6  # 3 distinct seeds, both passes
            assert stats.cached_columns == 0

    def test_chunk_size_never_changes_values(self, index):
        request = list(range(20))
        expected = index.query(request)
        for chunk_size in (1, 3, 7, 64):
            with CoSimRankService(
                index, chunk_size=chunk_size, max_workers=1, cache_columns=0
            ) as service:
                assert np.array_equal(service.query(request), expected)

    def test_float32_index_served_exactly(self, small_er):
        index32 = CSRPlusIndex(small_er, rank=6, dtype="float32").prepare()
        with CoSimRankService(index32, max_workers=1) as service:
            block = service.query([2, 4])
            assert block.dtype == np.float32
            assert np.array_equal(block, index32.query([2, 4]))


class TestBatching:
    def test_batch_output_order_and_shapes(self, index):
        requests = [[5], [1, 2, 3], [2, 5, 2]]
        with CoSimRankService(index, max_workers=1) as service:
            results = service.serve_batch(requests)
        assert [block.shape for block in results] == [(60, 1), (60, 3), (60, 3)]
        for request, block in zip(requests, results):
            assert np.array_equal(block, index.query(request))

    def test_batch_deduplicates_across_requests(self, index):
        requests = [[1, 2], [2, 3], [3, 1]]
        with CoSimRankService(index, max_workers=1) as service:
            service.serve_batch(requests)
            stats = service.stats()
        assert stats.misses == 3      # seeds {1, 2, 3} computed once
        assert stats.hits == 0
        assert stats.seeds_requested == 6
        assert stats.unique_seeds == 3

    def test_warm_batch_is_all_hits(self, index):
        requests = [[1, 2], [3]]
        with CoSimRankService(index, max_workers=1) as service:
            service.serve_batch(requests)
            service.serve_batch(requests)
            stats = service.stats()
        assert (stats.hits, stats.misses) == (3, 3)
        assert stats.batches == 2
        assert stats.requests == 4
        assert stats.hits + stats.misses == stats.unique_seeds

    def test_empty_batch_returns_empty_list(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            assert service.serve_batch([]) == []
            assert service.stats().batches == 1


class TestStatsAndLifecycle:
    def test_bytes_cached_matches_occupancy(self, index):
        with CoSimRankService(index, cache_columns=8, max_workers=1) as service:
            service.query(list(range(12)))  # 12 misses -> 4 evictions
            stats = service.stats()
        assert stats.evictions == 4
        assert stats.cached_columns == 8
        assert stats.bytes_cached == 8 * index.num_nodes * 8
        assert stats.cache_capacity == 8

    def test_phase_timings_accumulate(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            service.query([0, 1])
            stats = service.stats()
        assert stats.compute_seconds > 0.0
        assert stats.lookup_seconds >= 0.0
        assert stats.assemble_seconds >= 0.0
        payload = stats.as_dict()
        assert payload["hit_rate"] == stats.hit_rate

    def test_clear_cache_forces_recompute(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            first = service.query([4])
            service.clear_cache()
            second = service.query([4])
            stats = service.stats()
        assert np.array_equal(first, second)
        assert stats.misses == 2
        assert stats.hits == 0

    def test_close_is_idempotent(self, index):
        service = CoSimRankService(index, max_workers=2)
        service.query([0])
        service.close()
        service.close()


class TestValidation:
    def test_out_of_range_seed_rejected(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            with pytest.raises(QueryError):
                service.query([0, index.num_nodes])

    def test_empty_request_rejected(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            with pytest.raises(QueryError):
                service.serve_batch([[0], []])

    def test_bad_construction_parameters(self, index):
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, chunk_size=0)
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, max_workers=0)
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, cache_columns=-1)

    def test_unprepared_index_is_prepared_on_construction(self, small_er):
        index = CSRPlusIndex(small_er, rank=4)
        assert not index.is_prepared
        with CoSimRankService(index, max_workers=1) as service:
            assert index.is_prepared
            assert np.array_equal(service.query([0]), index.query([0]))


class TestQueryMode:
    def test_default_mode_is_exact(self, index):
        with CoSimRankService(index, max_workers=1) as service:
            assert service.query_mode == "exact"
            assert "query_mode='exact'" in repr(service)

    def test_mode_inherited_from_index_config(self, small_er):
        batched_index = CSRPlusIndex(
            small_er, rank=6, query_mode="batched"
        ).prepare()
        with CoSimRankService(batched_index, max_workers=1) as service:
            assert service.query_mode == "batched"

    def test_explicit_mode_overrides_config(self, small_er):
        batched_index = CSRPlusIndex(
            small_er, rank=6, query_mode="batched"
        ).prepare()
        with CoSimRankService(
            batched_index, max_workers=1, query_mode="exact"
        ) as service:
            assert service.query_mode == "exact"
            assert np.array_equal(
                service.query([0, 1]), batched_index.query_columns([0, 1], mode="exact")
            )

    def test_invalid_mode_rejected(self, index):
        with pytest.raises(InvalidParameterError):
            CoSimRankService(index, query_mode="turbo")

    def test_batched_mode_widens_chunks(self, index):
        with CoSimRankService(
            index, max_workers=1, chunk_size=4, query_mode="batched"
        ) as service:
            assert service.chunk_size == GEMM_MIN_CHUNK
        with CoSimRankService(
            index, max_workers=1, chunk_size=4, query_mode="exact"
        ) as service:
            assert service.chunk_size == 4
        with CoSimRankService(
            index, max_workers=1, chunk_size=256, query_mode="batched"
        ) as service:
            assert service.chunk_size == 256

    def test_batched_mode_serves_within_atol(self, index):
        request = list(range(20))
        exact = index.query_columns(request, mode="exact")
        atol = batched_query_atol(index.config.rank, exact.dtype)
        with CoSimRankService(
            index, max_workers=1, cache_columns=0, query_mode="batched"
        ) as service:
            np.testing.assert_allclose(
                service.query(request), exact, rtol=0.0, atol=atol
            )


class TestScheduler:
    def test_plan_batch_coalesces_and_sorts(self):
        plan = plan_batch([[3, 1], [1, 5]], num_nodes=10)
        assert isinstance(plan, BatchPlan)
        assert [ids.tolist() for ids in plan.request_ids] == [[3, 1], [1, 5]]
        assert plan.unique_seeds.tolist() == [1, 3, 5]
        assert plan.seeds_requested == 4
        assert plan.num_requests == 2

    def test_plan_batch_validates_each_request(self):
        with pytest.raises(QueryError):
            plan_batch([[0], [99]], num_nodes=10)

    def test_chunk_seeds_partitions_exactly(self):
        chunks = chunk_seeds(list(range(10)), 4)
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert chunk_seeds([], 4) == []
        with pytest.raises(InvalidParameterError):
            chunk_seeds([1], 0)

    def test_effective_chunk_size_per_mode(self):
        assert effective_chunk_size(4) == 4
        assert effective_chunk_size(4, "exact") == 4
        assert effective_chunk_size(4, "batched") == GEMM_MIN_CHUNK
        assert effective_chunk_size(GEMM_MIN_CHUNK, "batched") == GEMM_MIN_CHUNK
        assert effective_chunk_size(200, "batched") == 200
        with pytest.raises(InvalidParameterError):
            effective_chunk_size(0, "batched")
