"""Per-version cache invalidation across index swaps (docs/dynamic.md).

The contract, per layer:

* :class:`~repro.serving.cache.ColumnCache` — on ``advance(version,
  dirty_ranges)`` a seed inside a dirty range is dropped, a surviving
  column has exactly its dirty row ranges recomputed (bit-identical by
  Theorem 3.5 row independence), and an untouched entry is retained
  with its exact pre-swap bytes; inserts tagged with a replaced
  version are silently dropped.
* :class:`~repro.serving.cache.TopKCache` — a ranking is a global
  ordering: any dirty range clears the cache, a clean swap retags and
  keeps serving prefixes.
* :class:`~repro.serving.service.CoSimRankService.publish_index` — the
  served view of the same rules, including the acceptance pin that an
  untouched seed still *hits* (replaying exact pre-swap bytes) after a
  byte-no-op live update.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.core.topk import TopKResult
from repro.errors import InvalidParameterError
from repro.graphs.generators import erdos_renyi
from repro.serving import ColumnCache, CoSimRankService, LiveIndexChain, TopKCache


@pytest.fixture
def graph():
    return erdos_renyi(30, 120, seed=5)


@pytest.fixture
def index(graph):
    return CSRPlusIndex(graph, rank=4).prepare()


def _filled(num_rows=8, seeds=(0, 3, 6)):
    cache = ColumnCache(capacity=16, num_rows=num_rows)
    cache.insert({s: np.full(num_rows, float(s + 1)) for s in seeds})
    return cache


class TestColumnCacheAdvance:
    def test_clean_swap_retains_exact_bytes(self):
        cache = _filled()
        before = {s: cache.lookup([s])[0][s].copy() for s in (0, 3, 6)}
        counts = cache.advance(1, [])
        assert counts == {"dropped": 0, "patched": 0, "retained": 3}
        assert cache.version == 1
        for s in (0, 3, 6):
            hits, misses = cache.lookup([s])
            assert not misses
            assert np.array_equal(hits[s], before[s])

    def test_seed_in_dirty_range_dropped(self):
        cache = _filled()
        counts = cache.advance(
            1, [(3, 4)], recompute_rows=lambda s, a, b: np.zeros(b - a)
        )
        assert counts["dropped"] == 1
        assert counts["patched"] == 2
        _, misses = cache.lookup([3])
        assert misses == [3]

    def test_surviving_entry_patched_only_in_dirty_rows(self):
        cache = _filled()
        counts = cache.advance(
            1, [(4, 6)],
            recompute_rows=lambda s, a, b: np.full(b - a, -42.0),
        )
        assert counts == {"dropped": 0, "patched": 3, "retained": 0}
        column = cache.lookup([0])[0][0]
        want = np.full(8, 1.0)
        want[4:6] = -42.0
        assert np.array_equal(column, want)

    def test_patch_failure_drops_entry_not_publish(self):
        cache = _filled()

        def broken(seed, start, stop):
            raise RuntimeError("recompute backend died")

        counts = cache.advance(1, [(4, 6)], recompute_rows=broken)
        assert counts == {"dropped": 3, "patched": 0, "retained": 0}
        assert cache.version == 1  # the publish itself succeeded
        assert len(cache) == 0

    def test_dirty_ranges_without_patcher_drop(self):
        cache = _filled()
        counts = cache.advance(1, [(4, 6)])
        assert counts["dropped"] == 3

    def test_version_must_advance_monotonically(self):
        cache = _filled()
        cache.advance(2, [])
        with pytest.raises(InvalidParameterError):
            cache.advance(2, [])
        with pytest.raises(InvalidParameterError):
            cache.advance(1, [])

    def test_stale_insert_silently_dropped(self):
        cache = _filled()
        cache.advance(1, [])
        assert cache.insert({9: np.zeros(8)}, version=0) == 0
        assert 9 not in cache
        # a current-version insert still lands
        cache.insert({9: np.zeros(8)}, version=1)
        assert 9 in cache

    def test_old_version_lookup_misses_without_eviction(self):
        cache = _filled()
        cache.advance(1, [])
        _, misses = cache.lookup([0], version=0)
        assert misses == [0]  # pinned to the replaced version
        hits, _ = cache.lookup([0], version=1)
        assert 0 in hits  # ... but the entry itself survived


def _ranking(k=5):
    return TopKResult(
        nodes=np.arange(k, dtype=np.int64),
        scores=np.linspace(1.0, 0.1, k),
        candidates_scored=k,
        blocks_scanned=1,
        blocks_skipped=0,
    )


class TestTopKCacheAdvance:
    def test_clean_swap_keeps_prefix_answers(self):
        cache = TopKCache(capacity=8)
        cache.insert({4: _ranking(5)}, 5, True)
        counts = cache.advance(1, [])
        assert counts == {"dropped": 0, "retained": 1}
        hits, misses = cache.lookup([4], 3, True)
        assert not misses
        assert np.array_equal(hits[4].nodes, np.arange(3))

    def test_any_dirty_range_clears_everything(self):
        cache = TopKCache(capacity=8)
        cache.insert({4: _ranking(5), 9: _ranking(5)}, 5, True)
        counts = cache.advance(1, [(20, 21)])  # far from both seeds
        assert counts == {"dropped": 2, "retained": 0}
        assert len(cache) == 0

    def test_monotonic_and_stale_insert(self):
        cache = TopKCache(capacity=8)
        cache.advance(3, [])
        with pytest.raises(InvalidParameterError):
            cache.advance(3, [])
        assert cache.insert({1: _ranking(4)}, 4, True, version=2) == 0
        assert len(cache) == 0


class TestServedInvalidation:
    def test_untouched_seed_hits_with_exact_preswap_bytes(self, graph, index):
        """Acceptance pin: across a byte-no-op live update's swap, an
        untouched seed's cache hit rate stays > 0 and the replayed
        bytes are the exact pre-swap ones."""
        chain = LiveIndexChain(graph, rank=4)
        existing = next(iter(graph.edges()))
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            before = service.serve_batch([[2]])[0]
            hits_before = service.stats().hits
            link = chain.update_edges(added=[existing])  # byte-no-op batch
            assert link.version == 1
            after = service.serve_batch([[2]])[0]
            hits_after = service.stats().hits
        assert hits_after - hits_before > 0  # served from cache, post-swap
        assert np.array_equal(after, before)

    def test_touched_seed_recomputes_against_new_version(self, graph, index):
        chain = LiveIndexChain(graph, rank=4)
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            service.serve_batch([[2]])
            misses_before = service.stats().misses
            chain.update_edges(added=[(2, 25), (25, 2)])
            got = service.serve_batch([[2]])[0]
            assert service.stats().misses > misses_before
        scratch = CSRPlusIndex(chain.graph, rank=4).prepare()
        assert np.array_equal(got, scratch.query_columns([2], mode="exact"))

    def test_explicit_dirty_ranges_patch_surviving_columns(self, graph, index):
        """Publishing with synthetic dirty ranges that miss the cached
        seed exercises the row-patch path: the entry must still hit and
        the patched rows must be bit-identical to a fresh compute."""
        with CoSimRankService(index, max_workers=1) as service:
            before = service.serve_batch([[0]])[0]
            replacement = CSRPlusIndex(graph, rank=4).prepare()
            service.publish_index(replacement, dirty_ranges=[(10, 20)])
            hits_before = service.stats().hits
            after = service.serve_batch([[0]])[0]
            assert service.stats().hits - hits_before > 0
        assert np.array_equal(after, before)
        assert np.array_equal(
            after, replacement.query_columns([0], mode="exact")
        )

    def test_topk_prefix_served_across_clean_swap(self, graph, index):
        chain = LiveIndexChain(graph, rank=4)
        existing = next(iter(graph.edges()))
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            deep = service.serve_topk([7], 6)[0]
            chain.update_edges(added=[existing])  # clean (no-op) swap
            hits_before = service.topk_stats()["hits"]
            shallow = service.serve_topk([7], 3)[0]
            assert service.topk_stats()["hits"] - hits_before == 1
        assert np.array_equal(shallow.nodes, deep.nodes[:3])
        assert np.array_equal(shallow.scores, deep.scores[:3])

    def test_real_mutation_drops_topk_rankings(self, graph, index):
        chain = LiveIndexChain(graph, rank=4)
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            service.serve_topk([7], 4)
            misses_before = service.topk_stats()["misses"]
            chain.update_edges(added=[(7, 22), (22, 7)])
            got = service.serve_topk([7], 4)[0]
            assert service.topk_stats()["misses"] > misses_before
        from repro.core.topk import top_k_blockwise

        scratch = CSRPlusIndex(chain.graph, rank=4).prepare()
        want = top_k_blockwise(scratch, [7], 4, mode="exact")[0]
        assert np.array_equal(got.nodes, want.nodes)
        assert np.array_equal(got.scores, want.scores)
