"""IndexRegistry: lazy build/save/load of prepared indexes."""

import os

import numpy as np
import pytest

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.generators import erdos_renyi
from repro.serving import IndexRegistry


@pytest.fixture
def graph():
    return erdos_renyi(40, 160, seed=11)


class TestResolution:
    def test_build_saves_to_disk(self, tmp_path, graph):
        registry = IndexRegistry(tmp_path)
        index = registry.get("er40", graph, rank=4)
        assert index.is_prepared
        assert os.path.exists(registry.path_for("er40"))
        assert "er40" in registry
        assert registry.names() == ["er40"]

    def test_memory_tier_returns_same_object(self, tmp_path, graph):
        registry = IndexRegistry(tmp_path)
        first = registry.get("er40", graph, rank=4)
        second = registry.get("er40", graph, rank=4)
        assert first is second

    def test_loaded_index_answers_identically(self, tmp_path, graph):
        built = IndexRegistry(tmp_path).get("er40", graph, rank=4)
        # a fresh registry (fresh process, conceptually) loads from disk
        loaded = IndexRegistry(tmp_path).get("er40", graph, rank=4)
        assert loaded is not built
        request = [0, 7, 13, 7]
        assert np.array_equal(loaded.query(request), built.query(request))
        assert np.array_equal(
            loaded.query_columns([3, 9]), built.query_columns([3, 9])
        )

    def test_put_then_get_round_trip(self, tmp_path, graph):
        registry = IndexRegistry(tmp_path)
        index = CSRPlusIndex(graph, CSRPlusConfig(rank=3)).prepare()
        registry.put("mine", index)
        assert registry.get("mine", graph) is index
        registry.evict("mine")
        reloaded = IndexRegistry(tmp_path).get("mine", graph)
        assert np.array_equal(reloaded.query([1, 2]), index.query([1, 2]))

    def test_evict_with_delete_forces_rebuild(self, tmp_path, graph):
        registry = IndexRegistry(tmp_path)
        registry.get("er40", graph, rank=4)
        registry.evict("er40", delete_file=True)
        assert "er40" not in registry
        assert registry.names() == []


class TestValidation:
    def test_bad_names_rejected(self, tmp_path):
        registry = IndexRegistry(tmp_path)
        for name in ("", "../escape", "a/b", ".hidden", "sp ace"):
            with pytest.raises(InvalidParameterError):
                registry.path_for(name)

    def test_wrong_graph_rejected_on_load(self, tmp_path, graph):
        IndexRegistry(tmp_path).get("er40", graph, rank=4)
        other = erdos_renyi(41, 160, seed=11)
        with pytest.raises(InvalidParameterError):
            IndexRegistry(tmp_path).get("er40", other, rank=4)
