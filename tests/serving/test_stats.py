"""Edge cases for :class:`~repro.serving.stats.ServingStats`."""

import json

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.graphs.generators import ring
from repro.serving import CoSimRankService, ServingStats


class TestHitRate:
    def test_zero_lookups_is_zero_not_nan(self):
        stats = ServingStats()
        assert stats.hit_rate == 0.0

    def test_all_hits(self):
        assert ServingStats(hits=4, misses=0).hit_rate == 1.0

    def test_mixed(self):
        assert ServingStats(hits=1, misses=3).hit_rate == pytest.approx(0.25)


class TestAsDict:
    def test_round_trips_through_json_dumps(self):
        stats = ServingStats(
            requests=3, batches=2, seeds_requested=7, unique_seeds=5,
            hits=2, misses=3, evictions=1, cached_columns=4,
            bytes_cached=4096, cache_capacity=8,
            lookup_seconds=0.25, compute_seconds=1.5, assemble_seconds=0.125,
        )
        restored = json.loads(json.dumps(stats.as_dict()))
        assert restored["requests"] == 3
        assert restored["hits"] == 2
        assert restored["hit_rate"] == pytest.approx(0.4)
        assert restored["compute_seconds"] == pytest.approx(1.5)
        # every dataclass field appears, plus the derived hit_rate
        assert set(restored) == set(stats.as_dict())
        assert len(restored) == 24
        # the robustness and tier counters default to zero
        for key in (
            "retries", "shed", "deadline_exceeded",
            "degraded_requests", "cache_integrity_failures",
            "tier_exact", "tier_approx", "approx_batches",
            "approx_downgrades", "budget_underflows",
        ):
            assert restored[key] == 0

    def test_fresh_stats_are_json_safe(self):
        # all-zero snapshot must not divide by zero anywhere
        payload = json.dumps(ServingStats().as_dict())
        assert json.loads(payload)["hit_rate"] == 0.0


class TestUniqueSeedsInvariant:
    def test_mixed_hit_miss_workload(self):
        """Documented invariant: ``unique_seeds == hits + misses``."""
        index = CSRPlusIndex(ring(16), rank=4)
        with CoSimRankService(index, cache_columns=4, max_workers=1) as service:
            service.serve_batch([[0, 1, 2]])             # 3 misses
            service.serve_batch([[1, 2, 3], [3, 4]])     # hits + misses, dedup
            service.serve_batch([[5, 6, 7, 8]])          # forces evictions
            service.query(0)                             # may have been evicted
            stats = service.stats()
        assert stats.hits > 0 and stats.misses > 0       # genuinely mixed
        assert stats.unique_seeds == stats.hits + stats.misses
        # and the snapshot agrees with itself after JSON round-trip
        restored = json.loads(json.dumps(stats.as_dict()))
        assert restored["unique_seeds"] == restored["hits"] + restored["misses"]

    def test_invariant_with_duplicate_seeds_in_one_request(self):
        index = CSRPlusIndex(ring(8), rank=4)
        with CoSimRankService(index, cache_columns=8, max_workers=1) as service:
            service.serve_batch([[0, 0, 1], [1, 0]])
            stats = service.stats()
            assert np.array_equal(
                service.query([0, 0])[:, 0], service.query(0)[:, 0]
            )
        assert stats.seeds_requested == 5
        assert stats.unique_seeds == 2   # deduplicated across the batch
        assert stats.unique_seeds == stats.hits + stats.misses
