"""Unit tests for the per-seed column LRU cache."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.serving.cache import ColumnCache


def _col(value: float, n: int = 4) -> np.ndarray:
    return np.full(n, value, dtype=np.float64)


class TestLRUOrder:
    def test_evicts_least_recently_used_first(self):
        cache = ColumnCache(capacity=2)
        cache.insert({1: _col(1.0)})
        cache.insert({2: _col(2.0)})
        cache.insert({3: _col(3.0)})  # 1 is LRU -> evicted
        assert cache.keys_in_lru_order() == [2, 3]
        assert 1 not in cache
        assert cache.evictions == 1

    def test_lookup_refreshes_recency(self):
        cache = ColumnCache(capacity=2)
        cache.insert({1: _col(1.0), 2: _col(2.0)})
        cache.lookup([1])  # 1 becomes MRU; 2 is now LRU
        cache.insert({3: _col(3.0)})
        assert cache.keys_in_lru_order() == [1, 3]
        assert 2 not in cache

    def test_reinsert_refreshes_recency(self):
        cache = ColumnCache(capacity=2)
        cache.insert({1: _col(1.0), 2: _col(2.0)})
        cache.insert({1: _col(1.5)})  # replace -> MRU
        cache.insert({3: _col(3.0)})
        assert cache.keys_in_lru_order() == [1, 3]

    def test_oversized_insert_keeps_only_newest(self):
        cache = ColumnCache(capacity=2)
        cache.insert({k: _col(float(k)) for k in range(5)})
        assert cache.keys_in_lru_order() == [3, 4]
        assert cache.evictions == 3


class TestCapacityZero:
    def test_everything_misses_and_nothing_is_stored(self):
        cache = ColumnCache(capacity=0)
        cache.insert({1: _col(1.0)})
        hits, misses = cache.lookup([1, 2])
        assert hits == {}
        assert misses == [1, 2]
        assert len(cache) == 0
        assert cache.bytes_cached == 0
        # passthrough still counts its misses, so hit+miss accounting
        # stays consistent with the number of lookups performed
        assert cache.misses == 2
        assert cache.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            ColumnCache(capacity=-1)


class TestStatsAccounting:
    def test_hit_and_miss_counters(self):
        cache = ColumnCache(capacity=4)
        hits, misses = cache.lookup([1, 2])
        assert (cache.hits, cache.misses) == (0, 2)
        cache.insert({1: _col(1.0), 2: _col(2.0)})
        hits, misses = cache.lookup([1, 2, 3])
        assert sorted(hits) == [1, 2]
        assert misses == [3]
        assert (cache.hits, cache.misses) == (2, 3)
        counters = cache.counters()
        assert counters["hits"] + counters["misses"] == 5

    def test_byte_accounting_through_replace_evict_clear(self):
        cache = ColumnCache(capacity=2)
        small = _col(1.0, n=4)       # 32 bytes
        big = _col(2.0, n=8)         # 64 bytes
        cache.insert({1: small})
        assert cache.bytes_cached == small.nbytes
        cache.insert({1: big})       # replace: no double charge
        assert cache.bytes_cached == big.nbytes
        cache.insert({2: small, 3: small})  # evicts 1 (the big one)
        assert cache.bytes_cached == 2 * small.nbytes
        assert cache.counters()["cached_columns"] == 2
        cache.clear()
        assert cache.bytes_cached == 0
        assert len(cache) == 0

    def test_stored_columns_are_read_only(self):
        cache = ColumnCache(capacity=2)
        cache.insert({1: _col(1.0)})
        hits, _ = cache.lookup([1])
        with pytest.raises(ValueError):
            hits[1][0] = 99.0

    def test_lookup_returns_misses_in_input_order(self):
        cache = ColumnCache(capacity=4)
        cache.insert({5: _col(5.0)})
        _, misses = cache.lookup([9, 5, 3, 7])
        assert misses == [9, 3, 7]


class TestInsertValidation:
    """Regression: a poisoned worker result must never enter the cache.

    ``insert`` validates every column up front and applies nothing on
    failure, so a bad column can neither be served later nor corrupt
    the byte accounting halfway through a multi-column insert.
    """

    def _cache(self) -> ColumnCache:
        return ColumnCache(capacity=8, num_rows=4, dtype=np.float64)

    def test_wrong_length_rejected(self):
        cache = self._cache()
        with pytest.raises(InvalidParameterError, match="expected 4"):
            cache.insert({1: _col(1.0, n=5)})
        assert len(cache) == 0

    def test_wrong_dtype_rejected(self):
        cache = self._cache()
        with pytest.raises(InvalidParameterError, match="dtype"):
            cache.insert({1: np.full(4, 1.0, dtype=np.float32)})
        assert len(cache) == 0

    def test_two_dimensional_array_rejected(self):
        cache = self._cache()
        with pytest.raises(InvalidParameterError, match="1-D"):
            cache.insert({1: np.ones((4, 1))})
        assert len(cache) == 0

    def test_list_input_is_coerced_then_validated(self):
        cache = self._cache()
        cache.insert({1: [0.0, 0.0, 0.0, 0.0]})  # asarray -> valid float64
        assert 1 in cache
        with pytest.raises(InvalidParameterError):
            cache.insert({2: [0.0, 0.0]})  # coerced, then length-checked
        assert 2 not in cache

    def test_bad_batch_applies_nothing(self):
        # one bad column poisons the whole insert, atomically
        cache = self._cache()
        cache.insert({7: _col(7.0)})
        before = cache.bytes_cached
        with pytest.raises(InvalidParameterError):
            cache.insert({1: _col(1.0), 2: _col(2.0, n=3), 3: _col(3.0)})
        assert cache.keys_in_lru_order() == [7]
        assert cache.bytes_cached == before
        hits, misses = cache.lookup([1, 2, 3])
        assert hits == {} and misses == [1, 2, 3]

    def test_unconstrained_cache_still_accepts_any_1d_column(self):
        # without num_rows/dtype the original permissive contract holds
        cache = ColumnCache(capacity=4)
        cache.insert({1: _col(1.0, n=3),
                      2: np.full(9, 2.0, dtype=np.float32)})
        assert len(cache) == 2


class TestChecksumValidation:
    def test_checksums_detect_in_place_corruption(self):
        cache = ColumnCache(capacity=4, validate_checksums=True)
        cache.insert({1: _col(1.0)})
        # sneak past the read-only view to poison the stored bytes
        stored = cache._columns[1]
        stored.flags.writeable = True
        stored[0] = 99.0
        stored.flags.writeable = False
        hits, misses = cache.lookup([1])
        assert hits == {} and misses == [1]
        assert cache.integrity_failures == 1
        assert 1 not in cache  # poisoned entry dropped, will be recomputed

    def test_clean_entries_pass_validation(self):
        cache = ColumnCache(capacity=4, validate_checksums=True)
        cache.insert({1: _col(1.0), 2: _col(2.0)})
        hits, misses = cache.lookup([1, 2])
        assert sorted(hits) == [1, 2] and misses == []
        assert cache.integrity_failures == 0
        assert cache.counters()["integrity_failures"] == 0
