"""Chaos suite: ``serve_topk`` under injected shard and compute faults.

The top-k contract under faults is stricter than "mostly right": a
ranking is only useful if it is *complete and correctly ordered*, so a
failed or poisoned shard must surface as a typed
:mod:`repro.errors` exception (or a ``None`` hole under the partial
policy) — **never** as a silently truncated or reordered ranking.  And
because faults are injected, not real, disarming the plan must heal
the service in place: the very next call returns exact rankings.

Every test runs in both query modes: exact served rankings are
bit-identical to the engine; batched rankings keep the same node order
(the fixture graph has no near-ties) with scores inside
:func:`~repro.core.index.batched_query_atol`.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex, batched_query_atol
from repro.errors import ColumnComputeFailed, ReproError, ShardCorrupted
from repro.graphs.generators import erdos_renyi
from repro.serving import CoSimRankService
from repro.sharding import ShardedIndex, shard_index
from repro.testing.faults import FaultPlan

pytestmark = pytest.mark.chaos

SEEDS = [0, 25, 59, 25]
K = 7
RANK = 4


@pytest.fixture(params=["exact", "batched"])
def query_mode(request):
    return request.param


@pytest.fixture
def graph():
    return erdos_renyi(60, 260, seed=31)


@pytest.fixture
def mono_index(graph):
    return CSRPlusIndex(graph, rank=RANK).prepare()


@pytest.fixture
def store(mono_index, tmp_path):
    return shard_index(mono_index, tmp_path / "store", num_shards=3)


@pytest.fixture
def expected(mono_index):
    out = []
    for seed in SEEDS:
        nodes = mono_index.top_k(int(seed), K)
        out.append((nodes, mono_index.single_source(int(seed))[nodes]))
    return out


def _assert_exact(results, expected, query_mode="exact"):
    assert len(results) == len(expected)
    atol = 0.0 if query_mode == "exact" else batched_query_atol(RANK, "float64")
    for result, (nodes, scores) in zip(results, expected):
        np.testing.assert_array_equal(result.nodes, nodes)
        np.testing.assert_allclose(
            np.asarray(result.scores, dtype=np.float64),
            scores,
            rtol=0.0,
            atol=atol,
        )


def _poison(pair):
    """Corrupt the Z block of a loaded shard without changing its shape."""
    z, u = pair
    bad = np.array(z)
    bad[0, 0] += 1.0
    return bad, u


class TestReadFailures:
    def test_transient_failure_retried_to_exact_rankings(
        self, store, expected, query_mode
    ):
        with FaultPlan().fail(
            "shard.read", times=1, exc=OSError("flaky disk")
        ) as plan:
            with ShardedIndex(store, max_workers=1) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    results = service.serve_topk(SEEDS, K)
        assert plan.injected("shard.read") == 1
        _assert_exact(results, expected, query_mode)

    def test_persistent_failure_is_typed_never_truncated(self, store, query_mode):
        with FaultPlan().fail("shard.read", times=None):
            with ShardedIndex(store, max_workers=1, read_retries=0) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    detailed = service.serve_topk_detailed(SEEDS, K)
        assert not detailed.ok
        for outcome in detailed.outcomes:
            # all-or-typed: no outcome may carry a partial ranking
            assert outcome.result is None
            assert isinstance(outcome.error, ReproError)
            assert isinstance(outcome.error, ColumnComputeFailed)

    def test_partial_policy_returns_holes_not_short_rankings(
        self, store, query_mode
    ):
        with FaultPlan().fail("shard.read", times=None):
            with ShardedIndex(store, max_workers=1, read_retries=0) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    results = service.serve_topk(SEEDS, K, partial=True)
        assert results == [None] * len(SEEDS)

    def test_heals_after_disarm(self, store, expected, query_mode):
        with ShardedIndex(store, max_workers=1, read_retries=0) as idx:
            with CoSimRankService(
                idx, max_workers=1, query_mode=query_mode
            ) as service:
                with FaultPlan().fail("shard.read", times=None):
                    broken = service.serve_topk(SEEDS, K, partial=True)
                assert broken == [None] * len(SEEDS)
                # same service, same index, plan disarmed: exact again
                _assert_exact(service.serve_topk(SEEDS, K), expected, query_mode)


class TestLatency:
    def test_slow_shard_changes_nothing(self, store, expected, query_mode):
        sleeps = []
        with FaultPlan(sleep=sleeps.append).delay(
            "shard.read", seconds=0.25, times=2
        ) as plan:
            with ShardedIndex(store, max_workers=1) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    results = service.serve_topk(SEEDS, K)
        assert plan.injected("shard.read") == 2
        assert sleeps == [0.25, 0.25]
        _assert_exact(results, expected, query_mode)


class TestCorruption:
    def test_poisoned_shard_is_typed_with_validation(self, store, query_mode):
        """validate_reads re-hashes loaded blocks: a poisoned shard can
        never contribute wrong scores to a served ranking."""
        with FaultPlan().corrupt("shard.read", _poison, times=None):
            with ShardedIndex(
                store, max_workers=1, validate_reads=True, read_retries=0
            ) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    detailed = service.serve_topk_detailed(SEEDS, K)
        assert not detailed.ok
        for outcome in detailed.outcomes:
            assert outcome.result is None
            assert isinstance(outcome.error, ReproError)

    def test_one_shot_poison_retries_to_exact_rankings(
        self, store, expected, query_mode
    ):
        with FaultPlan().corrupt("shard.read", _poison, times=1) as plan:
            with ShardedIndex(
                store, max_workers=1, validate_reads=True
            ) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    results = service.serve_topk(SEEDS, K)
        assert plan.injected("shard.read") == 1
        _assert_exact(results, expected, query_mode)

    def test_corruption_error_chain_names_the_shard(self, store, query_mode):
        with FaultPlan().corrupt("shard.read", _poison, times=None):
            with ShardedIndex(
                store, max_workers=1, validate_reads=True, read_retries=0
            ) as idx:
                with CoSimRankService(
                    idx, max_workers=1, query_mode=query_mode
                ) as service:
                    detailed = service.serve_topk_detailed([0], K)
        error = detailed.outcomes[0].error
        cause = error.__cause__
        while cause is not None and not isinstance(cause, ShardCorrupted):
            cause = cause.__cause__
        assert isinstance(cause, ShardCorrupted)


class TestComputeFaults:
    def test_chunk_fault_isolated_and_counted(
        self, mono_index, expected, query_mode
    ):
        """A failing compute chunk degrades to per-seed retries; the
        retried rankings are still exact."""
        with CoSimRankService(
            mono_index, max_workers=1, query_mode=query_mode
        ) as service:
            with FaultPlan().fail(
                "compute.chunk", times=1, exc=RuntimeError("boom")
            ) as plan:
                results = service.serve_topk(SEEDS, K)
            assert plan.injected("compute.chunk") == 1
            _assert_exact(results, expected, query_mode)
            assert service.topk_stats()["retries"] == len(set(SEEDS))

    def test_metrics_count_degraded_topk_requests(self, mono_index, query_mode):
        with CoSimRankService(
            mono_index, max_workers=1, query_mode=query_mode
        ) as service:
            with FaultPlan().fail("compute.chunk", times=None):
                results = service.serve_topk(SEEDS, K, partial=True)
            assert results == [None] * len(SEEDS)
            stats = service.topk_stats()
            assert stats["degraded_requests"] == len(SEEDS)
            assert stats["retries"] == len(set(SEEDS))
