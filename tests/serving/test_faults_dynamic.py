"""Chaos suite for live-graph serving: updates, queries, swaps, faults.

The contract under test (docs/dynamic.md, docs/robustness.md): while
edge batches, version swaps, and injected shard faults interleave with
traffic, every answer the service returns is **bit-exact for the index
version its batch pinned** — or a **typed** :mod:`repro.errors`
exception.  Never a torn read mixing two versions, never silently
stale-after-invalidation bytes, never a hang; and once a fault plan is
disarmed the chain heals back to exact service.

Every test runs under the CI lane's hard thread-level timeout
(pytest-timeout): a swap that deadlocks against an in-flight batch is
itself the bug this suite exists to catch.
"""

import threading

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import ReproError
from repro.graphs.generators import erdos_renyi
from repro.serving import CoSimRankService, LiveIndexChain, RetryPolicy
from repro.testing.faults import FaultPlan

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)

SEEDS = [0, 7, 13, 25]


@pytest.fixture
def graph():
    return erdos_renyi(40, 160, seed=11)


def _scratch_answer(graph, seeds=SEEDS, rank=4):
    return CSRPlusIndex(graph, rank=rank).prepare().query_columns(
        seeds, mode="exact"
    )


def _batches():
    """A fixed little update scenario: growth, churn, and a byte-no-op."""
    return [
        dict(added=[(0, 20), (5, 31)]),
        dict(removed=[(0, 20)]),
        dict(added=[(2, 39), (17, 3)], removed=[(99, 100)]),  # missing edge
    ]


class TestSwapWhileInFlight:
    def test_concurrent_queries_see_only_whole_versions(self, graph):
        """Background threads hammer the service while the main thread
        publishes updates; every returned block must equal the exact
        answer of *some* published version — no torn or truncated reads,
        and the swaps must complete while those queries are in flight."""
        chain = LiveIndexChain(graph, rank=4)
        valid = [_scratch_answer(chain.graph)]
        collected = []
        errors = []
        stop = threading.Event()
        started = threading.Event()

        with CoSimRankService(chain.index, max_workers=2) as service:
            chain.attach(service)

            def hammer():
                while not stop.is_set():
                    try:
                        collected.append(service.serve_batch([SEEDS])[0])
                    except Exception as exc:  # noqa: BLE001 - triaged below
                        errors.append(exc)
                    started.set()

            workers = [threading.Thread(target=hammer) for _ in range(2)]
            for worker in workers:
                worker.start()
            started.wait(timeout=30)
            for batch in _batches():
                chain.update_edges(**batch)
                valid.append(_scratch_answer(chain.graph))
            # swaps completed while the hammer threads were live
            assert service.index_version == len(_batches())
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
                assert not worker.is_alive()
            final = service.serve_batch([SEEDS])[0]

        assert not errors, f"queries failed during swaps: {errors[:3]}"
        assert collected  # traffic genuinely overlapped the swaps
        for block in collected:
            assert any(np.array_equal(block, answer) for answer in valid), (
                "a served block matches no published version "
                "(torn or stale-undetected read)"
            )
        assert np.array_equal(final, valid[-1])  # settles on the newest

    def test_sharded_swap_with_inflight_topk(self, graph, tmp_path):
        """Same interleaving through the sharded repair path, with the
        ranking cache in play."""
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path)
        )
        collected = []
        errors = []
        stop = threading.Event()
        started = threading.Event()
        with CoSimRankService(chain.index, max_workers=2) as service:
            chain.attach(service)

            def hammer():
                while not stop.is_set():
                    try:
                        collected.append(service.serve_topk([5, 11], 4))
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                    started.set()

            worker = threading.Thread(target=hammer)
            worker.start()
            started.wait(timeout=30)
            for batch in _batches():
                chain.update_edges(**batch)
            stop.set()
            worker.join(timeout=30)
            assert not worker.is_alive()
            got = service.serve_topk([5, 11], 4)
        assert not errors
        assert collected
        scratch = CSRPlusIndex(chain.graph, rank=4).prepare()
        from repro.core.topk import top_k_blockwise

        want = top_k_blockwise(scratch, [5, 11], 4, mode="exact")
        for got_r, want_r in zip(got, want):
            assert np.array_equal(got_r.nodes, want_r.nodes)
            assert np.array_equal(got_r.scores, want_r.scores)


class TestShardFaultsDuringUpdates:
    def test_persistent_shard_fault_is_typed_then_heals(self, graph, tmp_path):
        """A dead shard after a swap surfaces as typed per-request
        errors; disarming the plan restores bit-exact service with no
        restart (the acceptance 'heals after disarm' clause)."""
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path)
        )
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            chain.update_edges(added=[(0, 20)])
            with FaultPlan().fail("shard.read", times=None) as plan:
                batch = service.serve_batch_detailed([SEEDS])
            assert plan.injected("shard.read") > 0
            for outcome in batch.outcomes:
                assert not outcome.ok
                assert isinstance(outcome.error, ReproError)
            # disarmed: the same request now serves scratch-exact bytes
            healed = service.serve_batch([SEEDS])[0]
        assert np.array_equal(healed, _scratch_answer(chain.graph))

    def test_corrupted_shard_read_never_served(self, graph, tmp_path):
        """A bit-flipped shard read during post-swap traffic is caught
        by read validation — retried to the exact bytes, never
        returned."""
        chain = LiveIndexChain(
            graph,
            rank=4,
            num_shards=3,
            store_root=str(tmp_path),
            validate_reads=True,
        )

        def poison(pair):
            z, u = pair
            bad = np.array(z)
            bad[0, 0] += 1.0
            return bad, u

        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            chain.update_edges(added=[(2, 39)])
            with FaultPlan().corrupt("shard.read", poison, times=1) as plan:
                got = service.serve_batch([SEEDS])[0]
            assert plan.injected("shard.read") == 1
        assert np.array_equal(got, _scratch_answer(chain.graph))

    def test_update_query_fault_interleave(self, graph, tmp_path):
        """The full chaos braid: update, transient shard fault, query,
        repeat — every served block exact for the then-current
        version."""
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path)
        )
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            for step, batch in enumerate(_batches()):
                chain.update_edges(**batch)
                with FaultPlan().fail(
                    "shard.read", times=1, exc=OSError("flaky disk")
                ):
                    got = service.serve_batch([SEEDS])[0]
                assert np.array_equal(got, _scratch_answer(chain.graph)), (
                    f"step {step}: healed read is not version-exact"
                )
            assert service.index_version == len(_batches())


class TestStaleProducers:
    def test_stale_insert_cannot_poison_new_version(self, graph):
        """A batch that pinned version v inserts its columns *after*
        the swap to v+1: the insert must be dropped, and the next
        lookup must recompute against the new index."""
        chain = LiveIndexChain(graph, rank=4)
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            old_version = service.index_version
            old_column = service.serve_batch([[3]])[0]
            chain.update_edges(added=[(3, 30), (30, 3)])
            # replay the old bytes with the stale tag — must be a no-op
            service._cache.insert({3: old_column[:, 0]}, version=old_version)
            got = service.serve_batch([[3]])[0]
        assert np.array_equal(
            got, _scratch_answer(chain.graph, seeds=[3])
        )
