"""The approximate serving tier: quality knob, downgrade, accounting.

docs/approx.md's contracts, end to end:

* ``quality="approx"`` answers from the sketch replica within
  :func:`~repro.serving.approx.approx_query_atol`, tagged
  ``tier="approx"``;
* ``quality="auto"`` turns would-be sheds into approximate answers
  instead of raising :class:`~repro.errors.ServiceOverloaded` — the
  acceptance bar is >= 90% of the requests an exact-only service sheds;
* approximate answers never enter the exact ``ColumnCache`` /
  ``TopKCache``;
* every answered request lands in exactly one of
  ``csrplus_serve_tier_{exact,approx}_total``;
* ``publish_index`` version-tags the replica; the registry resolves
  ``.approx.npz`` replicas through the same hardened tiers.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, ServiceOverloaded
from repro.graphs.generators import ring
from repro.metrics.accuracy import avg_diff
from repro.serving import (
    ApproxIndex,
    CoSimRankService,
    IndexRegistry,
    QUALITY_LEVELS,
    approx_query_atol,
)
from tests.obs.prom import assert_known_families

RANK = 6
N = 48


@pytest.fixture(scope="module")
def graph():
    return ring(N)


@pytest.fixture(scope="module")
def index(graph):
    return CSRPlusIndex(graph, rank=RANK).prepare()


@pytest.fixture(scope="module")
def replica(graph):
    return ApproxIndex.for_rank(graph, RANK, num_projections=256).prepare()


class TestQualityKnob:
    def test_quality_levels_constant(self):
        assert QUALITY_LEVELS == ("exact", "approx", "auto")

    def test_invalid_quality_rejected(self, index):
        with CoSimRankService(index) as service:
            with pytest.raises(InvalidParameterError, match="quality"):
                service.serve_batch([[0, 1]], quality="best-effort")
            with pytest.raises(InvalidParameterError, match="quality"):
                service.serve_topk([0], 3, quality="fast")

    def test_approx_without_replica_rejected(self, index):
        with CoSimRankService(index) as service:
            with pytest.raises(InvalidParameterError, match="approx_index"):
                service.serve_batch([[0, 1]], quality="approx")
            with pytest.raises(InvalidParameterError, match="approx_index"):
                service.serve_topk([0], 3, quality="approx")

    def test_auto_without_replica_is_plain_exact(self, index):
        # no replica: "auto" degrades to today's exact-or-shed policy
        with CoSimRankService(index, max_inflight_seeds=2) as service:
            blocks = service.serve_batch([[0, 1]], quality="auto")
            assert np.array_equal(blocks[0], index.query([0, 1]))
            with pytest.raises(ServiceOverloaded):
                service.serve_batch([[0, 1, 2, 3]], quality="auto")

    def test_replica_must_match_node_count(self, index):
        wrong = ApproxIndex(ring(N + 1), num_projections=64)
        with pytest.raises(InvalidParameterError, match="node set"):
            CoSimRankService(index, approx_index=wrong)


class TestApproxAnswers:
    def test_within_published_atol_of_exact(self, index, replica):
        with CoSimRankService(index, approx_index=replica) as service:
            request = [0, 3, 7, 3]
            result = service.serve_batch_detailed(
                [request], quality="approx"
            )
            (outcome,) = result.outcomes
            assert outcome.ok
            assert outcome.tier == "approx"
            exact = index.query(request)
            assert outcome.result.shape == exact.shape
            assert avg_diff(outcome.result, exact) <= replica.query_atol()
            assert outcome.result.flags["F_CONTIGUOUS"]

    def test_exact_outcomes_tagged_exact(self, index, replica):
        with CoSimRankService(index, approx_index=replica) as service:
            result = service.serve_batch_detailed([[0, 1]], quality="exact")
            assert [o.tier for o in result.outcomes] == ["exact"]
            assert np.array_equal(result.outcomes[0].result, index.query([0, 1]))

    def test_approx_never_enters_exact_cache(self, index, replica):
        with CoSimRankService(
            index, approx_index=replica, cache_columns=64
        ) as service:
            service.serve_batch([[0, 1, 2]], quality="approx")
            stats = service.stats()
            assert stats.cached_columns == 0
            assert stats.hits == 0 and stats.misses == 0
            # the exact tier then computes fresh, bit-exact columns
            blocks = service.serve_batch([[0, 1, 2]], quality="exact")
            assert np.array_equal(blocks[0], index.query([0, 1, 2]))
            assert service.stats().misses == 3

    def test_topk_approx_ranks_estimated_columns(self, index, replica):
        with CoSimRankService(index, approx_index=replica) as service:
            result = service.serve_topk_detailed([0, 5], 4, quality="approx")
            assert [o.tier for o in result.outcomes] == ["approx", "approx"]
            for seed, outcome in zip((0, 5), result.outcomes):
                ranking = outcome.result
                assert ranking.nodes.size == 4
                assert seed not in ranking.nodes
                # descending scores, ties by ascending id (canonical order)
                assert np.all(np.diff(ranking.scores) <= 1e-12)
            # nothing approximate was cached as an exact ranking
            assert service.topk_stats()["cached_entries"] == 0


class TestAutoDowngrade:
    def _overloaded(self, index, replica):
        # budget of 4 with 8-seed requests: exact-only sheds every batch
        return CoSimRankService(
            index,
            approx_index=replica,
            max_inflight_seeds=4,
            cache_columns=0,
        )

    def test_overload_downgrades_instead_of_shedding(self, index, replica):
        request = list(range(8))
        with self._overloaded(index, replica) as service:
            with pytest.raises(ServiceOverloaded):
                service.serve_batch([request], quality="exact")
            result = service.serve_batch_detailed([request], quality="auto")
            (outcome,) = result.outcomes
            assert outcome.ok
            assert outcome.tier == "approx"
            assert avg_diff(outcome.result, index.query(request)) <= (
                replica.query_atol()
            )
            stats = service.stats()
            assert stats.shed == 1  # only the quality="exact" call shed
            assert stats.approx_downgrades == 1

    def test_under_budget_auto_stays_exact(self, index, replica):
        with self._overloaded(index, replica) as service:
            result = service.serve_batch_detailed([[0, 1]], quality="auto")
            assert [o.tier for o in result.outcomes] == ["exact"]
            assert service.stats().approx_downgrades == 0

    def test_topk_auto_downgrades(self, index, replica):
        seeds = list(range(8))
        with self._overloaded(index, replica) as service:
            with pytest.raises(ServiceOverloaded):
                service.serve_topk(seeds, 3, quality="exact")
            result = service.serve_topk_detailed(seeds, 3, quality="auto")
            assert all(o.ok and o.tier == "approx" for o in result.outcomes)
            assert service.stats().approx_downgrades == 1

    def test_acceptance_serves_90pct_of_what_exact_sheds(self, index, replica):
        """>= 90% of the requests the exact-only baseline sheds are
        served (within atol) by the same traffic under quality="auto"."""
        requests = [[(3 * i + j) % N for j in range(8)] for i in range(20)]
        with CoSimRankService(
            index, max_inflight_seeds=4, cache_columns=0
        ) as baseline:
            shed = 0
            for request in requests:
                try:
                    baseline.serve_batch([request], quality="exact")
                except ServiceOverloaded:
                    shed += 1
        assert shed == len(requests)  # the scenario genuinely overloads
        with self._overloaded(index, replica) as service:
            served = 0
            for request in requests:
                result = service.serve_batch_detailed(
                    [request], quality="auto"
                )
                (outcome,) = result.outcomes
                if outcome.ok and outcome.tier == "approx":
                    assert avg_diff(
                        outcome.result, index.query(request)
                    ) <= replica.query_atol()
                    served += 1
            assert served / shed >= 0.90
            assert service.stats().shed == 0


class TestTierAccounting:
    def test_every_request_counted_exactly_once(self, index, replica):
        with CoSimRankService(
            index, approx_index=replica, max_inflight_seeds=4, cache_columns=0
        ) as service:
            service.serve_batch([[0, 1], [2]], quality="exact")  # 2 exact reqs
            service.serve_batch([[3, 4]], quality="approx")      # 1 approx req
            service.serve_batch([list(range(8))], quality="auto")  # 1 approx
            with pytest.raises(ServiceOverloaded):
                service.serve_batch([list(range(8))], quality="exact")
            service.serve_topk([0, 1], 3, quality="exact")       # 2 exact seeds
            service.serve_topk([2, 3, 4], 3, quality="approx")   # 3 approx seeds
            stats = service.stats()
            assert stats.tier_exact == 2 + 2
            assert stats.tier_approx == 1 + 1 + 3
            # the invariant: tiers partition answered requests; shed
            # batches count in neither
            topk_seeds = 2 + 3
            assert stats.tier_exact + stats.tier_approx == (
                stats.requests + topk_seeds
            )
            assert stats.shed == 1
            assert stats.approx_batches == 3
            assert stats.approx_downgrades == 1

    def test_metrics_families_are_registered(self, index, replica):
        with CoSimRankService(
            index, approx_index=replica, max_inflight_seeds=4, cache_columns=0
        ) as service:
            service.serve_batch([[0, 1]], quality="approx")
            service.serve_batch([list(range(8))], quality="auto")
            service.serve_topk([0], 3, quality="approx")
            service._budget.release(1)  # surface the underflow family too
            text = service.registry.render_prometheus()
        assert_known_families(text)
        assert "csrplus_serve_tier_exact_total" in text
        assert "csrplus_serve_tier_approx_total" in text
        assert "csrplus_approx_batches_total 3" in text
        assert "csrplus_approx_downgrades_total 1" in text
        assert "csrplus_serve_budget_underflow_total 1" in text
        assert "csrplus_approx_atol" in text

    def test_stats_snapshot_carries_tier_fields(self, index, replica):
        with CoSimRankService(index, approx_index=replica) as service:
            service.serve_batch([[0]], quality="approx")
            payload = service.stats().as_dict()
        for key in (
            "tier_exact", "tier_approx", "approx_batches",
            "approx_downgrades", "budget_underflows",
        ):
            assert key in payload
        assert payload["tier_approx"] == 1


class TestPublishReplica:
    def test_publish_swaps_and_version_tags_replica(self, graph, replica):
        index = CSRPlusIndex(graph, rank=RANK).prepare()
        with CoSimRankService(index, approx_index=replica) as service:
            assert service.approx_version == 0
            new_graph = graph.with_edges_added([(0, 24)])
            new_index = CSRPlusIndex(new_graph, rank=RANK).prepare()
            new_replica = ApproxIndex.for_rank(
                new_graph, RANK, num_projections=128
            )
            version = service.publish_index(
                new_index, approx_index=new_replica
            )
            assert service.approx_index is new_replica
            assert service.approx_version == version
            text = service.registry.render_prometheus()
            assert f"csrplus_approx_index_version {version}" in text
            result = service.serve_batch_detailed([[0, 1]], quality="approx")
            assert result.outcomes[0].tier == "approx"

    def test_publish_without_replica_keeps_stale_one(self, graph, replica):
        index = CSRPlusIndex(graph, rank=RANK).prepare()
        with CoSimRankService(index, approx_index=replica) as service:
            new_graph = graph.with_edges_added([(1, 30)])
            new_index = CSRPlusIndex(new_graph, rank=RANK).prepare()
            version = service.publish_index(new_index)
            assert service.approx_index is replica
            assert service.approx_version == 0  # visibly stale vs version
            assert version == 1

    def test_published_replica_must_match_node_count(self, graph, replica):
        index = CSRPlusIndex(graph, rank=RANK).prepare()
        with CoSimRankService(index, approx_index=replica) as service:
            new_index = CSRPlusIndex(graph, rank=RANK).prepare()
            wrong = ApproxIndex(ring(N + 2), num_projections=64)
            with pytest.raises(InvalidParameterError, match="node set"):
                service.publish_index(new_index, approx_index=wrong)


class TestApproxPersistence:
    def test_save_load_round_trip_is_byte_identical(self, graph, tmp_path):
        path = tmp_path / "replica.approx.npz"
        original = ApproxIndex.for_rank(
            graph, RANK, num_projections=128, seed=7
        ).prepare()
        original.save(path)
        loaded = ApproxIndex.load(path, graph)
        assert loaded.is_prepared
        assert loaded.dtype == original.dtype
        assert loaded.config == original.config
        seeds = [0, 5, 9]
        assert np.array_equal(
            loaded.query_columns(seeds), original.query_columns(seeds)
        )

    def test_load_rejects_wrong_graph(self, graph, tmp_path):
        path = tmp_path / "replica.approx.npz"
        ApproxIndex(graph, num_projections=64).save(path)
        with pytest.raises(InvalidParameterError, match="nodes"):
            ApproxIndex.load(path, ring(N + 3))

    def test_registry_resolves_replica_through_all_tiers(self, graph, tmp_path):
        registry = IndexRegistry(tmp_path)
        first = registry.get_approx(
            "ring-approx", graph, num_projections=128, seed=3
        )
        # build tier saved it with a checksum sidecar
        path = registry.approx_path_for("ring-approx")
        import os

        assert os.path.exists(path)
        assert os.path.exists(path + ".sha256")
        # memory tier: same object back
        assert registry.get_approx("ring-approx", graph) is first
        # disk tier: a fresh registry loads the identical sketches
        second = IndexRegistry(tmp_path).get_approx("ring-approx", graph)
        assert second is not first
        seeds = [0, 1, 2]
        assert np.array_equal(
            second.query_columns(seeds), first.query_columns(seeds)
        )
        assert "ring-approx" in registry.names()

    def test_registry_quarantines_corrupt_replica(self, graph, tmp_path):
        registry = IndexRegistry(tmp_path)
        registry.get_approx("bad", graph, num_projections=64, seed=1)
        path = registry.approx_path_for("bad")
        with open(path, "r+b") as handle:
            handle.seek(40)
            handle.write(b"\xff\xff\xff\xff")
        fresh = IndexRegistry(tmp_path)
        rebuilt = fresh.get_approx("bad", graph, num_projections=64, seed=1)
        assert rebuilt.is_prepared
        import os

        assert os.path.exists(path + ".corrupt")

    def test_evict_drops_replica_and_file(self, graph, tmp_path):
        registry = IndexRegistry(tmp_path)
        registry.get_approx("gone", graph, num_projections=64)
        path = registry.approx_path_for("gone")
        registry.evict("gone", delete_file=True)
        import os

        assert not os.path.exists(path)
        assert not os.path.exists(path + ".sha256")


class TestAtolContract:
    def test_atol_validates_parameters(self):
        with pytest.raises(InvalidParameterError):
            approx_query_atol(0, 0.6)
        with pytest.raises(InvalidParameterError):
            approx_query_atol(256, 1.0)

    def test_atol_shrinks_with_projections(self):
        assert approx_query_atol(1024, 0.6) < approx_query_atol(64, 0.6)

    def test_replica_exposes_its_contract(self, replica):
        assert replica.query_atol() == approx_query_atol(256, replica.damping)
