"""Observability of the top-k serving path.

Mirror of :mod:`tests.serving.test_observability` for ``serve_topk``:
the span taxonomy (``serve.topk`` → ``serve.topk.compute`` →
``serve.topk.chunk`` → ``topk.block``), the ``csrplus_topk_*``
instruments, and the CLI dumps (``serve-batch --topk`` with
``--metrics-out``/``--trace-out``).
"""

import json

import pytest

import repro.obs as obs
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu, ring
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serving import CoSimRankService
from repro.cli import main
from tests.obs.prom import assert_known_families


def _collect_spans(roots):
    by_name = {}

    def visit(span):
        by_name.setdefault(span.name, []).append(span)
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    return by_name


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def service_factory(tracer):
    def build(**kwargs):
        kwargs.setdefault("max_workers", 1)
        kwargs.setdefault("tracer", tracer)
        index = CSRPlusIndex(ring(24), rank=4)
        return CoSimRankService(index, **kwargs)

    return build


class TestTopkSpans:
    def test_topk_span_tree(self, service_factory, tracer):
        with service_factory() as service:
            service.serve_topk([0, 5, 9], 4)
        by_name = _collect_spans(tracer.roots())
        assert len(by_name["serve.topk"]) == 1
        topk_span = by_name["serve.topk"][0]
        assert topk_span.attributes["seeds"] == 3
        assert topk_span.attributes["k"] == 4
        compute = by_name["serve.topk.compute"][0]
        assert compute.attributes["misses"] == 3
        # the blockwise kernel's per-block spans nest under the chunks
        assert "serve.topk.chunk" in by_name
        assert "topk.block" in by_name
        blocks = by_name["topk.block"]
        assert all(
            "rows" in span.attributes or span.attributes
            for span in blocks
        )

    def test_warm_cache_skips_compute_chunks(self, service_factory, tracer):
        with service_factory() as service:
            service.serve_topk([0], 4)
            service.serve_topk([0], 4)
        by_name = _collect_spans(tracer.roots())
        assert len(by_name["serve.topk"]) == 2
        # the second call is a pure cache hit: exactly one chunk total
        assert len(by_name["serve.topk.chunk"]) == 1


class TestTopkMetrics:
    def test_scrape_covers_topk_family(self, service_factory):
        registry = MetricsRegistry()
        with service_factory(registry=registry) as service:
            service.serve_topk([0, 5, 9], 4)
            service.serve_topk([0], 4)
            stats = service.topk_stats()
        text = registry.render_prometheus()
        assert_known_families(text)
        assert f"csrplus_topk_batches_total {stats['batches']}" in text
        assert f"csrplus_topk_seeds_total {stats['seeds']}" in text
        assert f"csrplus_topk_cache_hits_total {stats['hits']}" in text
        assert f"csrplus_topk_cache_misses_total {stats['misses']}" in text
        assert (
            f"csrplus_topk_candidates_scored_total "
            f"{stats['candidates_scored']}" in text
        )
        assert stats["batches"] == 2
        assert stats["hits"] == 1

    def test_pruning_counters_account_for_all_blocks(self):
        registry = MetricsRegistry()
        index = CSRPlusIndex(chung_lu(300, 1200, seed=5), rank=6)
        with CoSimRankService(
            index, max_workers=1, registry=registry
        ) as service:
            service.serve_topk([0, 7], 5)
        scanned = registry.counter("csrplus_topk_blocks_scanned_total").value
        skipped = registry.counter("csrplus_topk_blocks_skipped_total").value
        assert scanned > 0
        assert scanned + skipped > 0


class TestTopkObservabilityCLI:
    """Satellite: serve-batch --topk emits csrplus_topk_* metrics and
    topk.block spans through --metrics-out / --trace-out."""

    @pytest.fixture(autouse=True)
    def _clean_obs_state(self):
        previous = obs.set_enabled(True)
        obs.get_tracer().reset()
        yield
        obs.set_enabled(previous)
        obs.get_tracer().reset()

    def test_topk_dumps(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text("0 1 2\n3\n")
        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.json"
        code = main([
            "serve-batch",
            "--dataset", "P2P",
            "--tier", "tiny",
            "--queries-file", str(queries),
            "--rank", "4",
            "--topk", "5",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-5 rankings" in out

        text = metrics_path.read_text()
        assert_known_families(text)
        assert "csrplus_topk_batches_total" in text
        assert "csrplus_topk_seeds_total 8" in text  # 4 seeds x 2 passes
        assert "csrplus_topk_candidates_scored_total" in text

        names = set()

        def visit(span):
            names.add(span["name"])
            for child in span["children"]:
                visit(child)

        for root in json.loads(trace_path.read_text())["spans"]:
            visit(root)
        assert {
            "serve.topk", "serve.topk.compute", "serve.topk.chunk",
            "topk.block",
        } <= names
