"""Tests for the deterministic open-loop load generator."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs import ring
from repro.obs.metrics import MetricsRegistry
from repro.serving import (
    CoSimRankService,
    LoadProfile,
    SimulatedClock,
    build_schedule,
    loadgen_slos,
    run_load,
    zipf_probabilities,
)
from tests.obs.prom import assert_known_families


@pytest.fixture(scope="module")
def index():
    return CSRPlusIndex(ring(48), rank=6).prepare()


def _service(index, **kwargs):
    kwargs.setdefault("max_workers", 1)
    return CoSimRankService(index, **kwargs)


class TestProfileValidation:
    @pytest.mark.parametrize("kwargs", [
        {"requests": 0},
        {"qps": 0.0},
        {"seeds_per_request": 0},
        {"zipf_s": -0.1},
        {"burst_factor": 0.5},
        {"burst_period_s": 0.0},
        {"burst_duty": 1.5},
    ])
    def test_bad_profiles_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            LoadProfile(**kwargs)


class TestZipf:
    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = zipf_probabilities(100, 1.1, rng)
        assert probs.shape == (100,)
        assert probs.sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        rng = np.random.default_rng(0)
        probs = zipf_probabilities(10, 0.0, rng)
        assert np.allclose(probs, 0.1)

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(0)
        probs = zipf_probabilities(1000, 1.2, rng)
        top = np.sort(probs)[::-1][:10].sum()
        assert top > 0.3  # a 1% hot set carries >30% of the traffic


class TestSchedule:
    def test_deterministic_for_equal_profiles(self):
        profile = LoadProfile(requests=40, qps=100.0, seed=5)
        a = build_schedule(profile, 48)
        b = build_schedule(profile, 48)
        assert a.requests == b.requests
        assert a.digest() == b.digest()

    def test_seed_changes_schedule(self):
        a = build_schedule(LoadProfile(requests=40, seed=1), 48)
        b = build_schedule(LoadProfile(requests=40, seed=2), 48)
        assert a.digest() != b.digest()

    def test_arrivals_are_strictly_ordered(self):
        schedule = build_schedule(LoadProfile(requests=100, qps=1000.0), 48)
        times = [req.at_s for req in schedule.requests]
        assert times == sorted(times)
        assert schedule.duration_s == times[-1]

    def test_bursts_raise_arrival_density(self):
        base = LoadProfile(requests=400, qps=100.0, seed=3)
        bursty = LoadProfile(
            requests=400, qps=100.0, seed=3,
            burst_factor=10.0, burst_period_s=10.0, burst_duty=0.5,
        )
        plain = build_schedule(base, 48)
        burst = build_schedule(bursty, 48)
        # same request count arrives much faster when half of every
        # cycle runs at 10x the base rate
        assert burst.duration_s < plain.duration_s

    def test_seeds_within_range_and_count(self):
        profile = LoadProfile(requests=30, seeds_per_request=5)
        schedule = build_schedule(profile, 48)
        for request in schedule.requests:
            assert len(request.seeds) == 5
            assert all(0 <= seed < 48 for seed in request.seeds)


class TestSimulatedClock:
    def test_sleep_advances_and_now_ticks(self):
        clock = SimulatedClock(start=0.0, tick=0.5)
        first = clock.now()
        clock.sleep(10.0)
        second = clock.now()
        assert second == pytest.approx(first + 10.0 + 0.5)

    def test_negative_sleep_is_noop(self):
        clock = SimulatedClock(tick=0.0)
        clock.sleep(-1.0)
        assert clock.now() == 0.0

    def test_negative_tick_rejected(self):
        with pytest.raises(InvalidParameterError):
            SimulatedClock(tick=-0.1)


class TestRunLoad:
    def _run(self, index, profile=None, **kwargs):
        profile = profile or LoadProfile(requests=40, qps=500.0, seed=2)
        schedule = build_schedule(profile, index.num_nodes)
        clock = SimulatedClock()
        service = _service(index, **kwargs.pop("service_kwargs", {}))
        try:
            return run_load(
                service, schedule,
                clock=clock.now, sleep=clock.sleep, **kwargs,
            ), service
        finally:
            service.close()

    def test_identical_runs_produce_identical_reports(self):
        # the PR's acceptance criterion: same profile, same seed, two
        # fresh services -> byte-identical schedule AND report
        index = CSRPlusIndex(ring(48), rank=6).prepare()
        first, _ = self._run(index, slos=loadgen_slos(p99_ms=250))
        second, _ = self._run(index, slos=loadgen_slos(p99_ms=250))
        assert first.schedule_digest == second.schedule_digest
        assert first.as_dict() == second.as_dict()

    def test_all_ok_on_healthy_service(self, index):
        report, service = self._run(index)
        assert report.outcomes["ok"] == 40
        assert report.ok_rate == 1.0
        assert report.requests == 40
        assert report.qps_achieved > 0
        assert report.latency_s["p50"] <= report.latency_s["p99"]

    def test_shed_outcomes_under_admission_pressure(self, index):
        profile = LoadProfile(
            requests=30, qps=500.0, seeds_per_request=8, zipf_s=0.0, seed=4
        )
        report, _ = self._run(
            index, profile=profile,
            service_kwargs={
                "max_inflight_seeds": 4, "cache_columns": 0,
            },
        )
        assert report.outcomes["shed"] == 30  # every request needs 8 > 4 seeds
        assert report.ok_rate == 0.0

    def test_topk_mode(self, index):
        report, service = self._run(index, topk=5)
        assert report.topk == 5
        assert report.outcomes["ok"] == 40
        assert service.topk_stats()["batches"] == 40

    def test_metrics_and_slo_export(self, index):
        registry = MetricsRegistry()
        report, service = self._run(
            index,
            registry=registry,
            slos=loadgen_slos(p99_ms=250.0, p50_ms=100.0, availability=0.9),
        )
        assert report.slo is not None and report.slo_ok
        assert {entry["name"] for entry in report.slo["slos"]} == {
            "loadgen-p99", "loadgen-p50", "loadgen-availability",
        }
        text = registry.render_prometheus()
        assert_known_families(text)
        assert "csrplus_loadgen_requests_total 40" in text
        assert 'csrplus_loadgen_outcomes_total{outcome="ok"} 40' in text
        assert "csrplus_loadgen_request_seconds_count 40" in text
        assert 'csrplus_slo_ok{slo="loadgen-p99"} 1' in text

    def test_slo_failure_detected(self, index):
        # 1 ms p99 bound is unmeetable even on the simulated clock tick
        report, _ = self._run(index, slos=loadgen_slos(availability=0.999))
        assert report.slo_ok
        profile = LoadProfile(
            requests=30, qps=500.0, seeds_per_request=8, zipf_s=0.0, seed=4
        )
        shed_report, _ = self._run(
            index, profile=profile,
            service_kwargs={"max_inflight_seeds": 4, "cache_columns": 0},
            slos=loadgen_slos(availability=0.999),
        )
        assert not shed_report.slo_ok

    def test_render_mentions_the_workload(self, index):
        report, _ = self._run(index)
        text = report.render()
        assert "loadgen:" in text
        assert "p99" in text
        assert report.schedule_digest[:16] in text

    def test_invalid_topk_rejected(self, index):
        schedule = build_schedule(LoadProfile(requests=2), index.num_nodes)
        service = _service(index)
        try:
            with pytest.raises(InvalidParameterError):
                run_load(service, schedule, topk=0)
        finally:
            service.close()


class TestFailedOutcome:
    """Hard failures are ``failed``, never ``degraded`` (the satellite
    bugfix): chaos-induced compute faults must not read as graceful
    degradation in availability verdicts."""

    _OVERLOAD = dict(
        requests=10, qps=500.0, seeds_per_request=4, zipf_s=0.0, seed=9
    )

    def test_compute_faults_classify_as_failed(self, index):
        from repro.testing.faults import FaultPlan

        profile = LoadProfile(**self._OVERLOAD)
        schedule = build_schedule(profile, index.num_nodes)
        registry = MetricsRegistry()
        clock = SimulatedClock()
        # every chunk AND every isolation retry fails -> each request
        # ends in ColumnComputeFailed, a hard failure
        service = _service(index, cache_columns=0)
        try:
            with FaultPlan(sleep=lambda s: None).fail(
                "compute.chunk", times=None
            ):
                report = run_load(
                    service, schedule,
                    registry=registry,
                    slos=loadgen_slos(availability=0.9),
                    clock=clock.now, sleep=clock.sleep,
                )
        finally:
            service.close()
        assert report.outcomes["failed"] == 10
        assert report.outcomes["degraded"] == 0
        assert report.ok_rate == 0.0
        # the new family feeds the availability SLO's bad set
        text = registry.render_prometheus()
        assert_known_families(text)
        assert "csrplus_loadgen_failed_total 10" in text
        assert not report.slo_ok

    def test_classifier_keeps_failures_out_of_degraded(self):
        from repro.errors import (
            ColumnComputeFailed,
            DeadlineExceeded,
            IndexCorrupted,
            ServiceOverloaded,
            ShardCorrupted,
        )
        from repro.serving.loadgen import _classify

        assert _classify(None) == "ok"
        assert _classify(None, tier="approx") == "approx"
        assert _classify(ServiceOverloaded(8, 4, 4)) == "shed"
        assert _classify(DeadlineExceeded(0.1, 0.2)) == "deadline"
        assert _classify(IndexCorrupted("x.npz", "bad digest")) == "failed"
        assert _classify(ShardCorrupted("y", 0, "bad shard")) == "failed"
        assert _classify(ColumnComputeFailed(3, "boom")) == "failed"


class TestQualityForwarding:
    """``run_load(quality="auto")`` turns overload sheds into served
    ``approx`` outcomes, and the availability SLO counts them good."""

    _OVERLOAD = dict(
        requests=30, qps=500.0, seeds_per_request=8, zipf_s=0.0, seed=4
    )

    def _auto_run(self, index, **kwargs):
        from repro.serving import ApproxIndex

        profile = LoadProfile(**self._OVERLOAD)
        schedule = build_schedule(profile, index.num_nodes)
        clock = SimulatedClock()
        replica = ApproxIndex.for_rank(
            index.graph, index.config.rank, num_projections=256
        ).prepare()
        service = _service(
            index,
            max_inflight_seeds=4,
            cache_columns=0,
            approx_index=replica,
        )
        try:
            return run_load(
                service, schedule, quality="auto",
                clock=clock.now, sleep=clock.sleep, **kwargs,
            ), service
        finally:
            service.close()

    def test_auto_serves_what_exact_only_sheds(self, index):
        report, service = self._auto_run(index)
        # the exact-only baseline sheds all 30 (see
        # test_shed_outcomes_under_admission_pressure); auto serves them
        assert report.outcomes["shed"] == 0
        assert report.outcomes["approx"] == 30
        assert report.served_rate == 1.0
        assert report.ok_rate == 0.0  # approx is served, but not "ok"
        stats = service.stats()
        assert stats.tier_approx == 30
        assert stats.approx_downgrades == 30
        assert stats.shed == 0

    def test_availability_slo_counts_approx_as_good(self, index):
        registry = MetricsRegistry()
        report, _ = self._auto_run(
            index,
            registry=registry,
            slos=loadgen_slos(availability=0.999),
        )
        assert report.slo_ok
        text = registry.render_prometheus()
        assert_known_families(text)
        assert 'csrplus_loadgen_outcomes_total{outcome="approx"} 30' in text

    def test_auto_report_stays_deterministic(self, index):
        first, _ = self._auto_run(index)
        second, _ = self._auto_run(index)
        assert first.as_dict() == second.as_dict()
