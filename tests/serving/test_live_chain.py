"""Unit tests for :class:`~repro.serving.live.LiveIndexChain`.

The version-chain mechanics (docs/dynamic.md): monotone version
numbers, per-version shard stores produced by targeted repair,
retention of recent links, service attachment, and the acceptance pin
that a localized (byte-no-op) batch rebuilds **strictly fewer** shards
than the manifest total.
"""

import os

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.generators import erdos_renyi
from repro.serving import CoSimRankService, IndexRegistry, LiveIndexChain
from repro.sharding import ShardStore


@pytest.fixture
def graph():
    return erdos_renyi(30, 120, seed=5)


class TestChainBasics:
    def test_initial_state(self, graph):
        chain = LiveIndexChain(graph, rank=4)
        assert chain.version == 0
        assert not chain.is_sharded
        assert chain.staleness == 0
        assert chain.current.index is chain.index
        assert chain.index.is_prepared

    def test_empty_update_is_noop(self, graph):
        chain = LiveIndexChain(graph, rank=4)
        link = chain.update_edges()
        assert link.version == 0
        assert link is chain.current

    def test_versions_are_monotone_and_trimmed(self, graph):
        chain = LiveIndexChain(graph, rank=4, keep_versions=2)
        for step in range(4):
            link = chain.update_edges(added=[(step, step + 10)])
            assert link.version == step + 1
        retained = chain.versions()
        assert [v.version for v in retained] == [3, 4]
        assert chain.staleness == 0  # every batch was rebuilt immediately

    def test_monolithic_update_matches_scratch(self, graph):
        chain = LiveIndexChain(graph, rank=4)
        chain.update_edges(added=[(0, 15)], removed=[next(iter(graph.edges()))])
        scratch = CSRPlusIndex(chain.graph, rank=4).prepare()
        seeds = [0, 7, 29]
        assert np.array_equal(
            chain.index.query_columns(seeds, mode="exact"),
            scratch.query_columns(seeds, mode="exact"),
        )

    def test_validation(self, graph, tmp_path):
        with pytest.raises(InvalidParameterError):
            LiveIndexChain(graph, rank=4, num_shards=0, store_root=str(tmp_path))
        with pytest.raises(InvalidParameterError):
            LiveIndexChain(graph, rank=4, num_shards=2)  # no store_root
        with pytest.raises(InvalidParameterError):
            LiveIndexChain(graph, rank=4, keep_versions=0)


class TestShardedRepair:
    def test_noop_batch_repairs_strictly_fewer_shards(self, graph, tmp_path):
        """Acceptance pin: a localized batch that leaves the graph's
        bytes unchanged (re-adding an existing edge) must rebuild
        strictly fewer shards than the manifest total — here, zero —
        and still publish a new, fully serviceable version."""
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path)
        )
        existing = next(iter(graph.edges()))
        link = chain.update_edges(added=[existing])
        total = ShardStore(link.store_path).manifest.num_shards
        assert link.version == 1
        assert not link.full_rebuild
        assert len(link.repaired_shards) < total  # strictly fewer
        assert link.repaired_shards == ()
        assert link.dirty_ranges == ()
        seeds = [0, 14, 29]
        scratch = CSRPlusIndex(chain.graph, rank=4).prepare()
        assert np.array_equal(
            chain.index.query_columns(seeds, mode="exact"),
            scratch.query_columns(seeds, mode="exact"),
        )

    def test_noop_batch_hard_links_clean_shards(self, graph, tmp_path):
        """The new version's clean shard files share bytes (hard links)
        with the old version's — repair never rewrites them."""
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path)
        )
        old_path = chain.current.store_path
        link = chain.update_edges(added=[next(iter(graph.edges()))])
        assert link.store_path != old_path
        old_files = sorted(
            f for f in os.listdir(old_path) if f.endswith(".npy")
        )
        assert old_files
        for name in old_files:
            old_file = os.path.join(old_path, name)
            new_file = os.path.join(link.store_path, name)
            assert os.path.exists(new_file)
            same_inode = os.stat(old_file).st_ino == os.stat(new_file).st_ino
            same_bytes = (
                open(old_file, "rb").read() == open(new_file, "rb").read()
            )
            assert same_inode or same_bytes

    def test_real_batch_matches_scratch(self, graph, tmp_path):
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path)
        )
        link = chain.update_edges(added=[(0, 15), (15, 0)])
        assert link.repaired_shards  # factors genuinely changed
        seeds = [0, 14, 29]
        scratch = CSRPlusIndex(chain.graph, rank=4).prepare()
        assert np.array_equal(
            chain.index.query_columns(seeds, mode="exact"),
            scratch.query_columns(seeds, mode="exact"),
        )

    def test_version_directories_accumulate(self, graph, tmp_path):
        chain = LiveIndexChain(
            graph, rank=4, num_shards=2, store_root=str(tmp_path)
        )
        chain.update_edges(added=[(1, 20)])
        chain.update_edges(added=[(2, 21)])
        dirs = sorted(os.listdir(tmp_path))
        # old version stores are never deleted — pinned readers may
        # still hold mmaps into them
        assert dirs == ["v000000", "v000001", "v000002"]


class TestAttachment:
    def test_attach_publishes_current_to_stale_service(self, graph):
        chain = LiveIndexChain(graph, rank=4)
        stale = CSRPlusIndex(graph, rank=4).prepare()
        with CoSimRankService(stale, max_workers=1) as service:
            chain.update_edges(added=[(0, 15)])
            chain.attach(service)  # service was behind the chain
            assert service.index is chain.index
            assert service.index_version == 1

    def test_detach_stops_publishing(self, graph):
        chain = LiveIndexChain(graph, rank=4)
        with CoSimRankService(chain.index, max_workers=1) as service:
            chain.attach(service)
            chain.detach(service)
            chain.detach(service)  # idempotent
            chain.update_edges(added=[(0, 15)])
            assert service.index_version == 0
            assert service.index is not chain.index

    def test_publish_rejects_mismatched_geometry(self, graph):
        other = erdos_renyi(31, 120, seed=6)
        index = CSRPlusIndex(graph, rank=4).prepare()
        wrong_nodes = CSRPlusIndex(other, rank=4).prepare()
        wrong_dtype = CSRPlusIndex(graph, rank=4, dtype="float32").prepare()
        with CoSimRankService(index, max_workers=1) as service:
            with pytest.raises(InvalidParameterError):
                service.publish_index(wrong_nodes)
            with pytest.raises(InvalidParameterError):
                service.publish_index(wrong_dtype)
            assert service.index_version == 0  # nothing swapped


class TestRegistryIntegration:
    def test_get_live_memoized(self, graph, tmp_path):
        registry = IndexRegistry(tmp_path)
        chain = registry.get_live("er30", graph, rank=4)
        assert registry.get_live("er30", graph, rank=4) is chain
        assert chain.version == 0

    def test_get_live_sharded_store_location(self, graph, tmp_path):
        registry = IndexRegistry(tmp_path)
        chain = registry.get_live("er30", graph, rank=4, num_shards=2)
        assert chain.is_sharded
        root = registry.live_store_root_for("er30")
        assert chain.current.store_path.startswith(root)
        assert os.path.isdir(chain.current.store_path)

    def test_evict_drops_chain_and_store(self, graph, tmp_path):
        registry = IndexRegistry(tmp_path)
        chain = registry.get_live("er30", graph, rank=4, num_shards=2)
        root = registry.live_store_root_for("er30")
        assert os.path.isdir(root)
        registry.evict("er30", delete_file=True)
        assert not os.path.exists(root)
        assert registry.get_live("er30", graph, rank=4) is not chain
