"""Cross-process registry safety: quarantine-and-rebuild is single-writer.

Two registry processes racing the same corrupt store must not both
quarantine it: the loser of the :class:`repro.serving.locks.FileLock`
blocks until the winner has repaired the shard, then re-verifies the
repaired bytes and serves them.  Exactly one repair happens, nobody
performs a full rebuild, and both processes answer identically.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.graphs.generators import chung_lu
from repro.obs.metrics import MetricsRegistry
from repro.serving import IndexRegistry

SEEDS = [0, 7, 99]


def _flip_byte(path):
    data = bytearray(open(path, "rb").read())
    data[-9] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(data))


def _race_get_sharded(root, barrier, out_path):
    """Child: open the registry, race the barrier, serve, dump evidence."""
    graph = chung_lu(100, 500, seed=5)
    metrics = MetricsRegistry()
    registry = IndexRegistry(root, metrics=metrics)
    barrier.wait(timeout=60)
    sharded = registry.get_sharded(
        "cl100", graph, rank=6, num_shards=4, max_workers=1
    )
    columns = sharded.query_columns(SEEDS)
    sharded.close()
    np.savez(
        out_path,
        columns=columns,
        repairs=metrics.counter(
            "csrplus_registry_shard_repairs_total", "x"
        ).value,
        rebuilds=metrics.counter(
            "csrplus_registry_rebuilds_total", "x"
        ).value,
    )


@pytest.mark.timeout(180)
def test_two_processes_racing_corrupt_store_repair_exactly_once(tmp_path):
    graph = chung_lu(100, 500, seed=5)
    root = tmp_path / "registry"

    # seed the store, record the healthy answer, then damage one shard
    seeder = IndexRegistry(root, metrics=MetricsRegistry())
    built = seeder.get_sharded(
        "cl100", graph, rank=6, num_shards=4, max_workers=1
    )
    want = built.query_columns(SEEDS)
    built.close()
    seeder.evict("cl100")
    store_path = seeder.shard_store_path_for("cl100")
    _flip_byte(os.path.join(store_path, "shard-00002.z.npy"))

    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(2)
    outputs = [tmp_path / "a.npz", tmp_path / "b.npz"]
    processes = [
        context.Process(
            target=_race_get_sharded, args=(root, barrier, out)
        )
        for out in outputs
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0

    repairs, rebuilds = 0, 0
    for out in outputs:
        with np.load(out) as data:
            # both processes serve the repaired, correct bytes
            assert np.array_equal(data["columns"], want)
            repairs += int(data["repairs"])
            rebuilds += int(data["rebuilds"])
    assert repairs == 1, (
        "exactly one process must win the file lock and repair the "
        f"shard (saw {repairs} repairs)"
    )
    assert rebuilds == 0, "a shard repair must never escalate to a rebuild"

    # the loser re-verified the winner's bytes: the store stays healthy
    metrics = MetricsRegistry()
    verifier = IndexRegistry(root, metrics=metrics)
    again = verifier.get_sharded(
        "cl100", graph, rank=6, num_shards=4, max_workers=1
    )
    assert np.array_equal(again.query_columns(SEEDS), want)
    again.close()
    assert metrics.counter(
        "csrplus_registry_shard_repairs_total", "x"
    ).value == 0
