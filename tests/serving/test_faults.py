"""Chaos suite: the serving stack under injected faults.

Every test arms a :class:`repro.testing.faults.FaultPlan` against one
of the production seams (registry reads/writes, cache reads, worker
chunks) and asserts the contract of docs/robustness.md: the service
either returns **bit-exact** results for unaffected requests or raises
a **typed** :mod:`repro.errors` exception — never a bare ``Exception``,
never a wrong column, never a hang.
"""

import os

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import (
    ColumnComputeFailed,
    DeadlineExceeded,
    IndexCorrupted,
    ReproError,
    RetryableError,
    ServiceOverloaded,
)
from repro.graphs.generators import erdos_renyi
from repro.serving import CoSimRankService, IndexRegistry, RetryPolicy
from repro.testing.faults import FaultPlan, active

pytestmark = pytest.mark.chaos

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture
def graph():
    return erdos_renyi(40, 160, seed=11)


@pytest.fixture
def index(graph) -> CSRPlusIndex:
    return CSRPlusIndex(graph, rank=4).prepare()


class TestRegistryFaults:
    def test_read_fails_twice_then_succeeds(self, tmp_path, graph, index):
        """Transient disk errors cost retries, not correctness."""
        registry = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        registry.put("er40", index)

        fresh = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        with FaultPlan().fail(
            "registry.load", times=2, exc=OSError("flaky disk")
        ) as plan:
            loaded = fresh.get("er40", graph)
        assert plan.seen("registry.load") == 3
        assert plan.injected("registry.load") == 2
        assert len(fresh.retrier.sleeps) == 2
        request = [0, 7, 13]
        assert np.array_equal(loaded.query(request), index.query(request))

    def test_read_fails_past_budget_falls_back_to_rebuild(
        self, tmp_path, graph, index
    ):
        """A persistently unreadable file degrades to a re-prepare."""
        registry = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        registry.put("er40", index)
        fresh = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        with FaultPlan().fail("registry.load", times=None) as plan:
            rebuilt = fresh.get("er40", graph, rank=4)
        assert plan.injected("registry.load") == 3  # full retry budget
        assert np.array_equal(rebuilt.query([1, 2]), index.query([1, 2]))

    def test_corrupt_file_is_typed_quarantined_and_rebuilt(
        self, tmp_path, graph, index
    ):
        registry = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        registry.put("er40", index)
        path = registry.path_for("er40")
        with open(path, "r+b") as handle:
            handle.seek(16)
            handle.write(b"\xde\xad\xbe\xef" * 8)

        # the load attempt itself raises the typed error, not a numpy one
        fresh = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        with pytest.raises(IndexCorrupted):
            fresh._load_checked(path, graph)

        # ... and get() degrades it to a slow start, not an outage
        rebuilt = fresh.get("er40", graph, rank=4)
        assert np.array_equal(rebuilt.query([3, 4]), index.query([3, 4]))
        assert os.path.exists(path + ".corrupt")
        assert os.path.exists(path)  # the rebuild re-saved a healthy file
        again = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        ).get("er40", graph, rank=4)
        assert np.array_equal(again.query([3, 4]), index.query([3, 4]))

    def test_corrupt_file_without_sidecar_still_typed(
        self, tmp_path, graph
    ):
        """Foreign junk (no checksum sidecar) maps to IndexCorrupted."""
        registry = IndexRegistry(tmp_path, retry_policy=FAST_RETRY)
        path = registry.path_for("junk")
        with open(path, "wb") as handle:
            handle.write(b"this is not an npz archive")
        with pytest.raises(IndexCorrupted):
            registry._load_checked(path, graph)

    def test_put_failure_is_typed_after_retries(self, tmp_path, index):
        registry = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        with FaultPlan().fail("registry.save", times=None):
            with pytest.raises(RetryableError):
                registry.put("er40", index)

    def test_get_survives_save_failure(self, tmp_path, graph):
        """A build whose save fails still serves from memory."""
        registry = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None
        )
        with FaultPlan().fail("registry.save", times=None):
            built = registry.get("er40", graph, rank=4)
        assert built.is_prepared
        assert not os.path.exists(registry.path_for("er40"))
        # the in-memory tier still resolves it
        assert registry.get("er40", graph, rank=4) is built


class TestChunkWorkerFaults:
    def test_transient_chunk_failure_heals_bit_exactly(self, index):
        """One flaky chunk: per-seed isolation retries recover everything."""
        with CoSimRankService(index, max_workers=1, chunk_size=2) as service:
            with FaultPlan().fail(
                "compute.chunk", times=1,
                when=lambda ctx: len(ctx["seeds"]) > 1,
            ):
                results = service.serve_batch([[5, 6, 7]])
            assert np.array_equal(results[0], index.query([5, 6, 7]))
            stats = service.stats()
            assert stats.retries > 0
            assert stats.degraded_requests == 0

    def test_poisonous_seed_is_isolated(self, index):
        """A persistently failing seed poisons only its own requests."""
        bad = lambda ctx: 9 in ctx["seeds"]  # noqa: E731
        with CoSimRankService(index, max_workers=1, chunk_size=8) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                batch = service.serve_batch_detailed([[8], [9], [10, 8]])
            assert np.array_equal(batch.outcomes[0].result, index.query([8]))
            assert np.array_equal(
                batch.outcomes[2].result, index.query([10, 8])
            )
            error = batch.outcomes[1].error
            assert isinstance(error, ColumnComputeFailed)
            assert error.seed == 9
            assert error.__cause__ is not None
            assert 9 in batch.failed_seeds
            assert service.stats().degraded_requests == 1

    def test_partial_policy_returns_none_holes(self, index):
        bad = lambda ctx: 3 in ctx["seeds"]  # noqa: E731
        with CoSimRankService(index, max_workers=1, chunk_size=4) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                results = service.serve_batch([[1, 2], [3]], partial=True)
            assert np.array_equal(results[0], index.query([1, 2]))
            assert results[1] is None

    def test_raise_policy_raises_typed_error(self, index):
        bad = lambda ctx: 3 in ctx["seeds"]  # noqa: E731
        with CoSimRankService(index, max_workers=1, chunk_size=4) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                with pytest.raises(ColumnComputeFailed):
                    service.serve_batch([[1, 2], [3]])

    def test_parallel_workers_same_contract(self, index):
        bad = lambda ctx: 0 in ctx["seeds"]  # noqa: E731
        with CoSimRankService(index, max_workers=4, chunk_size=1) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                batch = service.serve_batch_detailed(
                    [[seed] for seed in range(8)]
                )
            assert isinstance(batch.outcomes[0].error, ColumnComputeFailed)
            for seed in range(1, 8):
                assert np.array_equal(
                    batch.outcomes[seed].result, index.query([seed])
                )

    def test_failed_seed_never_cached(self, index):
        """A failure is not negative-cached: the next batch recomputes."""
        bad = lambda ctx: 5 in ctx["seeds"]  # noqa: E731
        with CoSimRankService(index, max_workers=1, chunk_size=1) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                assert service.serve_batch([[5]], partial=True) == [None]
            # fault gone: the same request now succeeds
            results = service.serve_batch([[5]])
            assert np.array_equal(results[0], index.query([5]))


class TestDeadlineFaults:
    def test_slow_chunk_past_deadline_is_typed(self, index):
        """Latency injection: chunks behind a blown deadline are cancelled."""
        with CoSimRankService(index, max_workers=1, chunk_size=1) as service:
            plan = FaultPlan().delay(
                "compute.chunk", seconds=0.2, times=1
            )
            with plan:
                with pytest.raises(DeadlineExceeded) as excinfo:
                    service.serve_batch(
                        [[0], [1], [2]], deadline_s=0.05
                    )
            assert excinfo.value.cancelled_seeds > 0
            assert service.stats().deadline_exceeded == 1

    def test_partial_policy_keeps_completed_work(self, index):
        with CoSimRankService(index, max_workers=1, chunk_size=1) as service:
            with FaultPlan().delay("compute.chunk", seconds=0.2, times=1):
                batch = service.serve_batch_detailed(
                    [[0], [1], [2]], deadline_s=0.05
                )
            # the slow chunk itself completed (cancellation is
            # cooperative); later chunks were cancelled with typed errors
            assert np.array_equal(batch.outcomes[0].result, index.query([0]))
            failed = [o for o in batch.outcomes if not o.ok]
            assert failed
            assert all(
                isinstance(o.error, DeadlineExceeded) for o in failed
            )

    def test_deterministic_deadline_with_injected_clock(self, index):
        """No real waiting: a fake clock drives the cancellation logic."""
        ticks = iter([0.0, 0.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0])
        service = CoSimRankService(
            index, max_workers=1, chunk_size=1, clock=lambda: next(ticks)
        )
        batch = service.serve_batch_detailed([[0], [1]], deadline_s=1.0)
        statuses = [outcome.ok for outcome in batch.outcomes]
        assert statuses == [True, False]
        assert isinstance(batch.outcomes[1].error, DeadlineExceeded)
        service.close()

    def test_completed_seeds_are_cached_for_next_batch(self, index):
        with CoSimRankService(index, max_workers=1, chunk_size=1) as service:
            with FaultPlan().delay("compute.chunk", seconds=0.2, times=1):
                service.serve_batch(
                    [[0], [1], [2]], deadline_s=0.05, partial=True
                )
            stats = service.stats()
            # at least the slow chunk's seed landed in the cache
            assert stats.cached_columns >= 1
            # and a relaxed re-issue is exact
            results = service.serve_batch([[0], [1], [2]])
            for seed, block in zip([0, 1, 2], results):
                assert np.array_equal(block, index.query([seed]))


class TestCachePoisoning:
    def test_poisoned_entry_recomputed_bit_exactly(self, index):
        """With validation on, a corrupted hit is evicted and recomputed."""
        with CoSimRankService(
            index, max_workers=1, cache_validate=True
        ) as service:
            clean = service.serve_batch([[4, 5]])
            with FaultPlan().corrupt(
                "cache.read", lambda col: col * 2.0, times=1
            ) as plan:
                poisoned_pass = service.serve_batch([[4, 5]])
            assert plan.injected("cache.read") == 1
            assert np.array_equal(poisoned_pass[0], clean[0])
            assert np.array_equal(poisoned_pass[0], index.query([4, 5]))
            stats = service.stats()
            assert stats.cache_integrity_failures == 1

    def test_wrong_shape_insert_rejected(self, index):
        """Regression: the cache refuses wrong-shaped producer output."""
        from repro.errors import InvalidParameterError

        with CoSimRankService(index, max_workers=1) as service:
            with pytest.raises(InvalidParameterError):
                service._cache.insert({0: np.zeros(index.num_nodes + 1)})


class TestLoadShedding:
    def test_oversized_batch_is_shed(self, index):
        with CoSimRankService(
            index, max_workers=1, max_inflight_seeds=4
        ) as service:
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.serve_batch([list(range(8))])
            assert excinfo.value.requested == 8
            assert excinfo.value.budget == 4
            assert service.stats().shed == 1
            # a batch inside the budget still serves normally
            results = service.serve_batch([[0, 1]])
            assert np.array_equal(results[0], index.query([0, 1]))

    def test_budget_releases_after_batches(self, index):
        with CoSimRankService(
            index, max_workers=1, max_inflight_seeds=4
        ) as service:
            for _ in range(5):  # sequential batches never accumulate
                service.serve_batch([[0, 1, 2, 3]])
            assert service.stats().shed == 0

    def test_budget_releases_after_failures(self, index):
        """Shedding accounting survives failing batches (finally path)."""
        with CoSimRankService(
            index, max_workers=1, max_inflight_seeds=4, chunk_size=1
        ) as service:
            with FaultPlan().fail("compute.chunk", times=None):
                service.serve_batch([[0, 1]], partial=True)
            results = service.serve_batch([[0, 1, 2, 3]])
            assert np.array_equal(results[0], index.query([0, 1, 2, 3]))


class TestObservabilityOfFailures:
    def test_counters_visible_in_prometheus_scrape(self, index):
        with CoSimRankService(
            index, max_workers=1, chunk_size=1, max_inflight_seeds=4,
        ) as service:
            with pytest.raises(ServiceOverloaded):
                service.serve_batch([list(range(8))])
            with FaultPlan().fail(
                "compute.chunk", times=None,
                when=lambda ctx: 1 in ctx["seeds"],
            ):
                service.serve_batch([[0], [1]], partial=True)
            with FaultPlan().delay("compute.chunk", seconds=0.2, times=1):
                service.serve_batch(
                    [[2], [3]], deadline_s=0.05, partial=True
                )
            text = service.registry.render_prometheus()
        assert "csrplus_serve_shed_total 1" in text
        assert "csrplus_serve_retries_total 1" in text
        assert "csrplus_serve_degraded_requests_total" in text
        assert "csrplus_serve_deadline_exceeded_total 1" in text

    def test_registry_retry_counters(self, tmp_path, graph, index):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        registry = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None,
            metrics=metrics,
        )
        registry.put("er40", index)
        fresh = IndexRegistry(
            tmp_path, retry_policy=FAST_RETRY, sleep=lambda s: None,
            metrics=metrics,
        )
        with FaultPlan().fail("registry.load", times=2):
            fresh.get("er40", graph)
        text = metrics.render_prometheus()
        assert "csrplus_registry_retries_total 2" in text


class TestFaultPlanFramework:
    def test_inactive_plan_is_invisible(self, index):
        plan = FaultPlan().fail("compute.chunk", times=None)
        assert not active()
        with CoSimRankService(index, max_workers=1) as service:
            results = service.serve_batch([[0]])  # plan never armed
        assert np.array_equal(results[0], index.query([0]))
        assert plan.seen("compute.chunk") == 0

    def test_times_budget_is_shared_across_threads(self, index):
        """times=2 fires exactly twice in total, not twice per worker."""
        with CoSimRankService(index, max_workers=4, chunk_size=1) as service:
            with FaultPlan().fail("compute.chunk", times=2) as plan:
                batch = service.serve_batch_detailed(
                    [[seed] for seed in range(10)]
                )
            assert batch.ok  # both faults healed by isolation retries
            assert plan.injected("compute.chunk") == 2

    def test_delay_and_fail_compose(self, index):
        events = []
        plan = FaultPlan(sleep=lambda s: events.append(("sleep", s)))
        plan.delay("compute.chunk", seconds=1.5, times=1)
        plan.fail("compute.chunk", times=1)
        with CoSimRankService(index, max_workers=1) as service:
            with plan:
                results = service.serve_batch([[0]])
        assert ("sleep", 1.5) in events  # delay applied before the failure
        assert np.array_equal(results[0], index.query([0]))

    def test_only_typed_errors_escape_the_service(self, index):
        """Whatever a fault raises, callers only ever see ReproError."""
        for exc in (RuntimeError("boom"), KeyError("x"), OSError("disk")):
            with CoSimRankService(index, max_workers=1) as service:
                with FaultPlan().fail(
                    "compute.chunk", times=None, exc=exc
                ):
                    with pytest.raises(ReproError):
                        service.serve_batch([[0]])
