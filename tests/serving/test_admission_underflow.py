"""A double-release of the seed budget is surfaced, never swallowed.

``SeedBudget.release`` runs inside the service's ``finally`` blocks, so
an unmatched release (an accounting bug in some degrade path) must not
raise — but it must not silently vanish either.  The contract: clamp
in-flight to zero, count the event, call ``on_underflow``, and log at
WARNING, all without disturbing the original batch's outcome.
"""

import logging

import pytest

from repro.core.index import CSRPlusIndex
from repro.graphs.generators import ring
from repro.serving import CoSimRankService, SeedBudget


class TestSeedBudgetUnderflow:
    def test_double_release_clamps_and_counts(self):
        budget = SeedBudget(4)
        assert budget.try_acquire(3)
        budget.release(3)
        budget.release(3)  # the bug: released twice
        assert budget.in_flight == 0
        assert budget.underflows == 1

    def test_release_beyond_acquired_reports_deficit(self):
        seen = []
        budget = SeedBudget(8, on_underflow=seen.append)
        assert budget.try_acquire(2)
        budget.release(5)
        assert budget.in_flight == 0
        assert budget.underflows == 1
        assert seen == [3]

    def test_warning_logged(self, caplog):
        budget = SeedBudget(4)
        budget.try_acquire(1)
        budget.release(1)
        with caplog.at_level(logging.WARNING, logger="repro.serving"):
            budget.release(1)
        assert any(
            "without a matching try_acquire" in record.message
            for record in caplog.records
        )

    def test_matched_releases_never_count(self):
        budget = SeedBudget(4, on_underflow=lambda d: pytest.fail(
            "matched release must not report an underflow"
        ))
        for _ in range(5):
            assert budget.try_acquire(2)
            budget.release(2)
        assert budget.underflows == 0
        assert budget.in_flight == 0

    def test_budget_still_usable_after_underflow(self):
        budget = SeedBudget(2)
        budget.release(7)  # nothing acquired at all
        assert budget.underflows == 1
        # the clamp keeps the ceiling meaningful afterwards
        assert budget.try_acquire(2)
        assert not budget.try_acquire(1)
        budget.release(2)
        assert budget.in_flight == 0
        assert budget.underflows == 1


class TestServiceUnderflowCounter:
    def test_underflow_lands_in_service_stats_and_metrics(self):
        index = CSRPlusIndex(ring(24), rank=4).prepare()
        with CoSimRankService(index, max_inflight_seeds=8) as service:
            assert service.stats().budget_underflows == 0
            # simulate the double-release bug against the service's own
            # budget: the instrument the constructor wired must count it
            service._budget.release(3)
            stats = service.stats()
            assert stats.budget_underflows == 1
            text = service.registry.render_prometheus()
            assert "csrplus_serve_budget_underflow_total 1" in text

    def test_healthy_serving_never_underflows(self):
        index = CSRPlusIndex(ring(24), rank=4).prepare()
        with CoSimRankService(index, max_inflight_seeds=8) as service:
            for _ in range(3):
                service.serve_batch([[0, 1, 2], [3, 4]])
            assert service.stats().budget_underflows == 0
