"""Concurrency stress tests: many threads, one service, exact answers.

The service's contract under concurrency is strong because columns are
pure functions of their seeds: whatever interleaving of lookups,
computes, inserts, and evictions occurs, every returned block must be
bit-identical to a serial run, and the hit/miss counters must add up
exactly (no lost updates).
"""

import threading

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu
from repro.serving import CoSimRankService

NUM_THREADS = 8
REQUESTS_PER_THREAD = 50


@pytest.fixture(scope="module")
def index() -> CSRPlusIndex:
    return CSRPlusIndex(chung_lu(300, 1500, seed=41), rank=8).prepare()


def _make_requests(num_nodes: int):
    """A deterministic mixed workload: hot seeds, cold seeds, duplicates."""
    rng = np.random.default_rng(97)
    hot = rng.integers(0, num_nodes, size=12)
    requests = []
    for _ in range(NUM_THREADS * REQUESTS_PER_THREAD):
        size = int(rng.integers(1, 8))
        if rng.random() < 0.5:  # hot request: seeds repeat across threads
            ids = rng.choice(hot, size=size)
        else:
            ids = rng.integers(0, num_nodes, size=size)
        requests.append(ids.tolist())
    return requests


def _run_threads(service, requests):
    results = [None] * len(requests)
    errors = []
    barrier = threading.Barrier(NUM_THREADS)

    def worker(thread_id: int):
        try:
            barrier.wait()  # maximise interleaving
            start = thread_id * REQUESTS_PER_THREAD
            for offset in range(REQUESTS_PER_THREAD):
                slot = start + offset
                results[slot] = service.query(requests[slot])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


@pytest.mark.slow
class TestConcurrentServing:
    def test_results_identical_to_serial_and_counters_consistent(self, index):
        requests = _make_requests(index.num_nodes)
        expected = [index.query(request) for request in requests]

        # a small capacity keeps evictions happening throughout the run,
        # exercising the hardest cache state under contention
        with CoSimRankService(
            index, cache_columns=32, max_workers=4, chunk_size=2
        ) as service:
            results = _run_threads(service, requests)
            stats = service.stats()

        for slot, (got, want) in enumerate(zip(results, expected)):
            assert np.array_equal(got, want), f"request {slot} diverged"

        assert stats.requests == NUM_THREADS * REQUESTS_PER_THREAD
        assert stats.batches == NUM_THREADS * REQUESTS_PER_THREAD
        assert stats.seeds_requested == sum(len(r) for r in requests)
        # every distinct-seed lookup resolved to exactly one of hit/miss
        assert stats.hits + stats.misses == stats.unique_seeds
        assert stats.unique_seeds == sum(len(set(r)) for r in requests)
        assert stats.cached_columns <= 32

    def test_shared_hot_seed_never_corrupts(self, index):
        """All threads hammer the same seeds; cached column stays exact."""
        request = [5, 17, 5]
        expected = index.query(request)
        outputs = []
        output_lock = threading.Lock()
        barrier = threading.Barrier(NUM_THREADS)

        def worker():
            barrier.wait()
            for _ in range(REQUESTS_PER_THREAD):
                block = service.query(request)
                with output_lock:
                    outputs.append(block)

        with CoSimRankService(index, cache_columns=4, max_workers=4) as service:
            threads = [
                threading.Thread(target=worker) for _ in range(NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()

        assert len(outputs) == NUM_THREADS * REQUESTS_PER_THREAD
        for block in outputs:
            assert np.array_equal(block, expected)
        total_lookups = NUM_THREADS * REQUESTS_PER_THREAD * 2  # 2 distinct seeds
        assert stats.hits + stats.misses == total_lookups
        # at least one real miss (cold start), overwhelmingly hits after
        assert 1 <= stats.misses <= 2 * NUM_THREADS
        assert stats.hits == total_lookups - stats.misses
