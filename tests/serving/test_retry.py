"""Deterministic unit tests for the backoff policy and retrier.

Everything side-effectful in :mod:`repro.serving.retry` is injectable
— the sleeper and the jitter source — so these tests assert the *exact*
sleep schedule a policy produces, the jitter bounds, and the cap,
without a single real wait.
"""

import random

import pytest

from repro.errors import (
    IndexCorrupted,
    InvalidParameterError,
    RetryableError,
    ServiceOverloaded,
)
from repro.serving.retry import DEFAULT_RETRY_ON, Retrier, RetryPolicy


class TestDelaySchedule:
    def test_exact_unjittered_sequence_with_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.05, multiplier=2.0,
            max_delay_s=0.3, jitter=0.0,
        )
        delays = [policy.delay_for(attempt) for attempt in range(1, 6)]
        # 0.05, 0.1, 0.2 then capped at 0.3 forever
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.1, multiplier=3.0,
            max_delay_s=10.0, jitter=0.25,
        )
        rng = random.Random(1234)
        for attempt, raw in ((1, 0.1), (2, 0.3), (3, 0.9)):
            for _ in range(200):
                delay = policy.delay_for(attempt, rng)
                assert raw * 0.75 <= delay <= raw * 1.25
        # jitter actually varies (not stuck at the skeleton value)
        samples = {policy.delay_for(1, rng) for _ in range(50)}
        assert len(samples) > 1

    def test_seeded_rng_makes_jitter_reproducible(self):
        policy = RetryPolicy(jitter=0.5)
        first = [
            policy.delay_for(k, random.Random(7)) for k in range(1, 4)
        ]
        second = [
            policy.delay_for(k, random.Random(7)) for k in range(1, 4)
        ]
        assert first == second

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(jitter=0.9)
        assert policy.delay_for(1) == policy.base_delay_s

    def test_policy_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_delay_s=0.01, base_delay_s=0.05)
        with pytest.raises(InvalidParameterError):
            RetryPolicy().delay_for(0)


class TestRetrier:
    def test_records_exact_sleep_sequence(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=3.0, jitter=0.0,
        )
        slept = []
        retrier = Retrier(policy, sleep=slept.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise OSError("transient")
            return "done"

        assert retrier.call(flaky) == "done"
        assert slept == [1.0, 2.0, 3.0]  # capped on the third retry
        assert retrier.sleeps == slept

    def test_exhaustion_reraises_the_original_error(self):
        retrier = Retrier(
            RetryPolicy(max_attempts=3, jitter=0.0), sleep=lambda s: None
        )
        boom = OSError("persistent")

        def always_fails():
            raise boom

        with pytest.raises(OSError) as excinfo:
            retrier.call(always_fails)
        assert excinfo.value is boom
        assert len(retrier.sleeps) == 2  # attempts 1 and 2 backed off

    def test_non_retryable_propagates_immediately(self):
        retrier = Retrier(RetryPolicy(max_attempts=5), sleep=lambda s: None)
        for exc in (ValueError("bad"), IndexCorrupted("p", "bits")):
            calls = {"n": 0}

            def fails(exc=exc):
                calls["n"] += 1
                raise exc

            with pytest.raises(type(exc)):
                retrier.call(fails)
            assert calls["n"] == 1
        assert retrier.sleeps == []

    def test_retryable_error_hierarchy_is_retried(self):
        # ServiceOverloaded classifies as transient via RetryableError
        assert issubclass(ServiceOverloaded, RetryableError)
        assert isinstance(RetryableError("x"), DEFAULT_RETRY_ON)
        retrier = Retrier(
            RetryPolicy(max_attempts=2, jitter=0.0), sleep=lambda s: None
        )
        calls = {"n": 0}

        def once():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceOverloaded(8, 0, 4)
            return calls["n"]

        assert retrier.call(once) == 2

    def test_on_retry_callback_sees_attempt_delay_and_error(self):
        seen = []
        retrier = Retrier(
            RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter=0.0),
            sleep=lambda s: None,
            on_retry=lambda attempt, delay, exc: seen.append(
                (attempt, delay, type(exc).__name__)
            ),
        )
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("x")
            return True

        assert retrier.call(flaky)
        assert seen == [(1, 0.5, "OSError"), (2, 1.0, "OSError")]

    def test_single_attempt_policy_never_sleeps(self):
        retrier = Retrier(RetryPolicy(max_attempts=1), sleep=lambda s: None)
        with pytest.raises(OSError):
            retrier.call(lambda: (_ for _ in ()).throw(OSError("x")))
        assert retrier.sleeps == []


class TestFailureCountersEndToEnd:
    """ServingStats fields agree with the Prometheus instruments."""

    @pytest.fixture
    def service(self):
        from repro.core.index import CSRPlusIndex
        from repro.graphs.generators import ring
        from repro.serving import CoSimRankService

        index = CSRPlusIndex(ring(16), rank=4).prepare()
        with CoSimRankService(
            index, max_workers=1, chunk_size=1, max_inflight_seeds=4
        ) as service:
            yield service

    def test_retries_shed_deadline_counters(self, service):
        from repro.errors import ServiceOverloaded
        from repro.testing.faults import FaultPlan

        with pytest.raises(ServiceOverloaded):
            service.serve_batch([list(range(8))])       # shed
        with FaultPlan().fail("compute.chunk", times=1):
            service.serve_batch([[0]])                  # healed by a retry
        with FaultPlan().delay("compute.chunk", seconds=0.2, times=1):
            service.serve_batch(
                [[1], [2]], deadline_s=0.05, partial=True
            )                                           # deadline cancel

        stats = service.stats()
        assert stats.shed == 1
        assert stats.retries == 1
        assert stats.deadline_exceeded == 1
        assert stats.degraded_requests >= 1

        scrape = service.registry.render_prometheus()
        assert f"csrplus_serve_shed_total {stats.shed}" in scrape
        assert f"csrplus_serve_retries_total {stats.retries}" in scrape
        assert (
            f"csrplus_serve_deadline_exceeded_total "
            f"{stats.deadline_exceeded}" in scrape
        )
        assert (
            f"csrplus_serve_degraded_requests_total "
            f"{stats.degraded_requests}" in scrape
        )

    def test_stats_dict_round_trips_counters(self, service):
        payload = service.stats().as_dict()
        for key in ("retries", "shed", "deadline_exceeded",
                    "degraded_requests", "cache_integrity_failures"):
            assert key in payload
