"""Request-ID correlation across outcomes, spans, and the slow-query log.

The service mints ``batch-<seq>`` / ``topk-<seq>`` ids per call and
``<batch_id>.<index>`` per request; the same id must be observable on
the :class:`~repro.serving.results.RequestOutcome`, on the batch span's
attributes, and in the slow-query log's structured JSON line — that
triple join is the whole point of the ids (docs/observability.md).
"""

import json
import logging

import pytest

from repro.core.index import CSRPlusIndex
from repro.graphs.generators import ring
from repro.obs.tracing import Tracer
from repro.serving import CoSimRankService
from repro.testing.faults import FaultPlan


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def service_factory(tracer):
    def build(**kwargs):
        kwargs.setdefault("max_workers", 1)
        kwargs.setdefault("tracer", tracer)
        return CoSimRankService(CSRPlusIndex(ring(24), rank=4), **kwargs)

    return build


class TestBatchRequestIds:
    def test_outcomes_carry_sequential_ids(self, service_factory):
        with service_factory() as service:
            first = service.serve_batch_detailed([[0, 1], [2]])
            second = service.serve_batch_detailed([[3]])
        assert first.batch_id == "batch-1"
        assert [o.request_id for o in first.outcomes] == [
            "batch-1.0", "batch-1.1",
        ]
        assert second.batch_id == "batch-2"
        assert second.outcomes[0].request_id == "batch-2.0"

    def test_span_attributes_match_outcomes(self, service_factory, tracer):
        with service_factory() as service:
            result = service.serve_batch_detailed([[0, 1], [1, 2]])
        batch = [r for r in tracer.roots() if r.name == "serve.batch"][0]
        assert batch.attributes["batch_id"] == result.batch_id
        assert batch.attributes["request_ids"] == [
            o.request_id for o in result.outcomes
        ]

    def test_failed_outcomes_keep_their_ids(self, service_factory):
        bad = lambda ctx: 1 in ctx["seeds"]  # noqa: E731
        with service_factory(cache_columns=0, chunk_size=1) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                result = service.serve_batch_detailed([[0], [1]])
        assert result.outcomes[0].ok
        assert not result.outcomes[1].ok
        assert result.outcomes[1].request_id == f"{result.batch_id}.1"

    def test_slow_log_json_line_joins_the_trace(
        self, service_factory, tracer, caplog
    ):
        with service_factory(slow_query_seconds=1e-9) as service:
            with caplog.at_level(logging.WARNING, logger="repro.serving"):
                result = service.serve_batch_detailed([[0, 1], [2]])
            ring_entry = service.slow_queries()[0]

        # the log line is machine-parseable JSON with the stable
        # "slow batch" event name...
        record = next(
            r for r in caplog.records if "slow batch" in r.message
        )
        payload = json.loads(record.message)
        assert payload["event"] == "slow batch"
        # ...and carries the same ids as the outcome, the ring entry,
        # and the batch span: one id joins all four surfaces
        span = [r for r in tracer.roots() if r.name == "serve.batch"][0]
        expected_ids = [o.request_id for o in result.outcomes]
        assert payload["batch_id"] == result.batch_id
        assert payload["request_ids"] == expected_ids
        assert ring_entry["batch_id"] == result.batch_id
        assert ring_entry["request_ids"] == expected_ids
        assert span.attributes["batch_id"] == result.batch_id
        assert payload["seconds"] == ring_entry["seconds"]
        assert payload["threshold_seconds"] == 1e-9


class TestTopkRequestIds:
    def test_topk_ids_use_their_own_prefix(self, service_factory):
        with service_factory() as service:
            batch = service.serve_batch_detailed([[0]])
            topk = service.serve_topk_detailed([0, 5], 3)
        # one shared mint: ids stay unique across entry points
        assert batch.batch_id == "batch-1"
        assert topk.batch_id == "topk-2"
        assert [o.request_id for o in topk.outcomes] == [
            "topk-2.0", "topk-2.1",
        ]

    def test_topk_span_attributes(self, service_factory, tracer):
        with service_factory() as service:
            result = service.serve_topk_detailed([0, 5], 3)
        span = [r for r in tracer.roots() if r.name == "serve.topk"][0]
        assert span.attributes["batch_id"] == result.batch_id
        assert span.attributes["request_ids"] == [
            o.request_id for o in result.outcomes
        ]

    def test_topk_failed_outcomes_keep_ids(self, service_factory):
        bad = lambda ctx: 5 in ctx["seeds"]  # noqa: E731
        with service_factory(topk_cache_entries=0, chunk_size=1) as service:
            with FaultPlan().fail("compute.chunk", times=None, when=bad):
                result = service.serve_topk_detailed([0, 5], 3)
        assert result.outcomes[0].ok
        assert not result.outcomes[1].ok
        assert result.outcomes[1].request_id == f"{result.batch_id}.1"
