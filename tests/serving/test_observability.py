"""Observability behaviour of the serving layer.

Covers the span-based phase timing that replaced the ad-hoc
``time.perf_counter()`` arithmetic, the registry-backed
:class:`ServingStats`, the per-batch latency histogram, per-worker
compute spans, and the slow-query log.
"""

import logging

import numpy as np
import pytest

import repro.obs as obs
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu, ring
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serving import CoSimRankService


def _collect_spans(roots):
    """Flatten a span forest into a name -> [span, ...] map."""
    by_name = {}

    def visit(span):
        by_name.setdefault(span.name, []).append(span)
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    return by_name


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


@pytest.fixture
def service_factory(tracer):
    def build(**kwargs):
        kwargs.setdefault("max_workers", 1)
        kwargs.setdefault("tracer", tracer)
        index = CSRPlusIndex(ring(24), rank=4)
        return CoSimRankService(index, **kwargs)

    return build


class TestPhaseSpans:
    def test_batch_span_covers_all_phases(self, service_factory, tracer):
        with service_factory() as service:
            service.serve_batch([[0, 1], [1, 2]])
        batches = [r for r in tracer.roots() if r.name == "serve.batch"]
        assert len(batches) == 1
        batch = batches[0]
        child_names = [child.name for child in batch.children]
        assert child_names == [
            "serve.coalesce", "serve.lookup", "serve.compute", "serve.assemble",
        ]
        assert batch.attributes["requests"] == 2
        assert batch.attributes["unique_seeds"] == 3

    def test_phase_totals_sum_to_at_most_batch_wall_time(self, service_factory):
        """Regression for the stale timing plumbing: the three exported
        phase totals are measured by nested spans, so they can never
        exceed the total batch wall time."""
        total_batch_wall = 0.0
        with service_factory(tracer=obs.get_tracer()) as service:
            for _ in range(5):
                with obs.get_tracer().span("test.wrapper") as wrapper:
                    service.serve_batch([[0, 1, 2, 3], [4, 5]])
                total_batch_wall += wrapper.wall_seconds
            stats = service.stats()
        phase_sum = (
            stats.lookup_seconds + stats.compute_seconds + stats.assemble_seconds
        )
        assert phase_sum > 0.0
        assert phase_sum <= total_batch_wall

    def test_worker_chunk_spans_nest_under_compute(self, tracer):
        index = CSRPlusIndex(chung_lu(200, 800, seed=3), rank=4)
        with CoSimRankService(
            index, max_workers=4, chunk_size=8, tracer=tracer,
            cache_columns=0,
        ) as service:
            service.serve_batch([list(range(40))])
        by_name = _collect_spans(tracer.roots())
        compute = by_name["serve.compute"][0]
        chunks = [c for c in compute.children if c.name == "serve.compute.chunk"]
        assert len(chunks) == 5          # 40 misses / chunk_size 8
        assert sum(c.attributes["seeds"] for c in chunks) == 40
        # parallel chunks really ran on worker threads
        assert any(
            c.thread_name.startswith("cosimrank-serve") for c in chunks
        )


class TestRegistryBackedStats:
    def test_stats_agree_with_prometheus_scrape(self, service_factory):
        registry = MetricsRegistry()
        with service_factory(registry=registry, cache_columns=2) as service:
            service.serve_batch([[0, 1, 2], [2, 3]])
            service.serve_batch([[3, 4]])
            stats = service.stats()
        text = registry.render_prometheus()
        assert f"csrplus_serve_requests_total {stats.requests}" in text
        assert f"csrplus_serve_batches_total {stats.batches}" in text
        assert f"csrplus_serve_cache_hits_total {stats.hits}" in text
        assert f"csrplus_serve_cache_misses_total {stats.misses}" in text
        assert f"csrplus_serve_cache_evictions_total {stats.evictions}" in text
        assert f"csrplus_serve_cache_columns {stats.cached_columns}" in text
        assert f"csrplus_serve_cache_capacity {stats.cache_capacity}" in text
        assert "csrplus_serve_batch_seconds_count 2" in text

    def test_private_registries_do_not_mix(self, tracer):
        index = CSRPlusIndex(ring(12), rank=4)
        with CoSimRankService(index, max_workers=1, tracer=tracer) as a, \
                CoSimRankService(index, max_workers=1, tracer=tracer) as b:
            a.serve_batch([[0, 1]])
            assert a.stats().requests == 1
            assert b.stats().requests == 0

    def test_batch_histogram_counts_batches(self, service_factory):
        registry = MetricsRegistry()
        with service_factory(registry=registry) as service:
            for _ in range(3):
                service.query(0)
        hist = registry.histogram("csrplus_serve_batch_seconds")
        assert hist.count == 3
        assert hist.sum > 0.0

    def test_counters_still_count_when_disabled(self, service_factory):
        with obs.instrumentation(False):
            with service_factory() as service:
                service.serve_batch([[0, 1], [1]])
                stats = service.stats()
        assert stats.requests == 2
        assert stats.unique_seeds == stats.hits + stats.misses == 2
        # span-measured timings are zero with instrumentation off
        assert stats.compute_seconds == 0.0

    def test_results_identical_with_instrumentation_on_and_off(self):
        index = CSRPlusIndex(chung_lu(150, 600, seed=9), rank=5)
        requests = [[0, 5, 9], [5, 17]]
        direct = [index.query(request) for request in requests]
        for flag in (True, False):
            with obs.instrumentation(flag):
                with CoSimRankService(index, max_workers=1) as service:
                    cold = service.serve_batch(requests)
                    warm = service.serve_batch(requests)
            for got, expected in zip(cold + warm, direct + direct):
                assert np.array_equal(got, expected)


class TestSlowQueryLog:
    def test_threshold_zero_point_logs_every_batch(self, service_factory, caplog):
        with service_factory(slow_query_seconds=1e-9) as service:
            with caplog.at_level(logging.WARNING, logger="repro.serving"):
                service.serve_batch([[0, 1, 2]])
            slow = service.slow_queries()
        assert len(slow) == 1
        entry = slow[0]
        assert entry["requests"] == 1
        assert entry["unique_seeds"] == 3
        assert entry["seconds"] > 0
        assert set(entry["phases"]) == {
            "coalesce", "lookup", "compute", "assemble",
        }
        assert any("slow batch" in r.message for r in caplog.records)
        assert service.registry.counter(
            "csrplus_serve_slow_batches_total"
        ).value == 1

    def test_high_threshold_never_fires(self, service_factory, caplog):
        with service_factory(slow_query_seconds=3600.0) as service:
            with caplog.at_level(logging.WARNING, logger="repro.serving"):
                service.serve_batch([[0, 1]])
            assert service.slow_queries() == []
        assert not caplog.records

    def test_ring_is_bounded(self, service_factory):
        with service_factory(
            slow_query_seconds=1e-9, slow_query_log_size=2
        ) as service:
            for _ in range(5):
                service.query(0)
            assert len(service.slow_queries()) == 2
            assert service.registry.counter(
                "csrplus_serve_slow_batches_total"
            ).value == 5

    def test_invalid_parameters_rejected(self, service_factory):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            service_factory(slow_query_seconds=0.0)
        with pytest.raises(InvalidParameterError):
            service_factory(slow_query_log_size=0)
