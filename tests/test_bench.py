"""Tests for perf-trajectory snapshots and regression gating."""

import copy
import json

import pytest

from repro.bench import (
    DEFAULT_TOLERANCE,
    SCHEMA,
    compare_snapshots,
    load_snapshot,
    render_comparison,
    run_bench,
    write_snapshot,
)
from repro.errors import GraphFormatError, InvalidParameterError
from repro.graphs import ring
from repro.serving import LoadProfile


@pytest.fixture(scope="module")
def payload():
    return run_bench(
        ring(32),
        rank=6,
        profile=LoadProfile(requests=30, qps=500.0, seed=1),
        simulate=True,
    )


class TestRunBench:
    def test_payload_shape(self, payload):
        assert payload["schema"] == SCHEMA
        assert payload["workload"]["num_nodes"] == 32
        assert set(payload["environment"]) >= {"python", "numpy", "scipy"}
        for name, metric in payload["metrics"].items():
            assert metric["direction"] in ("lower", "higher"), name
            assert metric["value"] >= 0.0
            assert metric["unit"]
        assert {
            "prepare_seconds",
            "exact_columns_per_second",
            "batched_columns_per_second",
            "topk_seeds_per_second",
            "loadgen_p99_seconds",
            "loadgen_qps_achieved",
            "loadgen_ok_rate",
        } <= set(payload["metrics"])

    def test_embeds_loadgen_report_and_slo(self, payload):
        assert payload["loadgen"]["requests"] == 30
        assert payload["slo"]["ok"] is True

    def test_simulated_loadgen_metrics_are_deterministic(self, payload):
        again = run_bench(
            ring(32),
            rank=6,
            profile=LoadProfile(requests=30, qps=500.0, seed=1),
            simulate=True,
        )
        for name in ("loadgen_p50_seconds", "loadgen_p99_seconds",
                     "loadgen_qps_achieved", "loadgen_ok_rate"):
            assert (
                again["metrics"][name]["value"]
                == payload["metrics"][name]["value"]
            ), name
        assert (
            again["loadgen"]["schedule_digest"]
            == payload["loadgen"]["schedule_digest"]
        )


class TestSnapshotIO:
    def test_round_trip(self, payload, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_snapshot(payload, str(path))
        loaded = load_snapshot(str(path))
        assert loaded == json.loads(json.dumps(payload))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_snapshot(str(tmp_path / "nope.json"))

    def test_non_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(GraphFormatError):
            load_snapshot(str(path))

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "csrplus-bench/v0", "metrics": {}}))
        with pytest.raises(GraphFormatError):
            load_snapshot(str(path))

    def test_missing_metrics_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(GraphFormatError):
            load_snapshot(str(path))


class TestCompare:
    def test_identical_snapshots_are_clean(self, payload):
        assert compare_snapshots(payload, payload) == []

    def test_negative_tolerance_rejected(self, payload):
        with pytest.raises(InvalidParameterError):
            compare_snapshots(payload, payload, tolerance=-0.1)

    def test_lower_direction_regression(self, payload):
        worse = copy.deepcopy(payload)
        worse["metrics"]["prepare_seconds"]["value"] *= 2.0
        regressions = compare_snapshots(payload, worse, tolerance=0.25)
        assert [entry["metric"] for entry in regressions] == [
            "prepare_seconds"
        ]
        assert regressions[0]["ratio"] == pytest.approx(2.0)
        # the reverse direction (getting faster) is never a regression
        assert compare_snapshots(worse, payload, tolerance=0.25) == []

    def test_higher_direction_regression(self, payload):
        worse = copy.deepcopy(payload)
        worse["metrics"]["loadgen_qps_achieved"]["value"] /= 3.0
        regressions = compare_snapshots(payload, worse, tolerance=0.25)
        assert [entry["metric"] for entry in regressions] == [
            "loadgen_qps_achieved"
        ]
        assert regressions[0]["ratio"] == pytest.approx(3.0)

    def test_within_tolerance_is_clean(self, payload):
        slightly = copy.deepcopy(payload)
        slightly["metrics"]["prepare_seconds"]["value"] *= 1.0 + (
            DEFAULT_TOLERANCE * 0.9
        )
        assert compare_snapshots(payload, slightly) == []

    def test_new_metrics_are_skipped(self, payload):
        newer = copy.deepcopy(payload)
        newer["metrics"]["brand_new_metric"] = {
            "value": 1.0, "unit": "x", "direction": "lower",
        }
        assert compare_snapshots(payload, newer) == []

    def test_render_flags_regressions(self, payload):
        worse = copy.deepcopy(payload)
        worse["metrics"]["prepare_seconds"]["value"] *= 10.0
        regressions = compare_snapshots(payload, worse, tolerance=0.25)
        text = render_comparison(payload, worse, regressions, 0.25)
        assert "REGRESSED" in text
        assert "prepare_seconds" in text
        assert "1 metric(s) regressed" in text

    def test_render_clean_comparison(self, payload):
        text = render_comparison(payload, payload, [], 0.25)
        assert "no regressions" in text
