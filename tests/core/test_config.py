"""Unit tests for CSRPlusConfig."""

import pytest

from repro.core.config import (
    DEFAULT_DAMPING,
    DEFAULT_EPSILON,
    DEFAULT_RANK,
    CSRPlusConfig,
)
from repro.errors import InvalidParameterError


class TestDefaults:
    def test_paper_defaults(self):
        config = CSRPlusConfig()
        assert config.damping == DEFAULT_DAMPING == 0.6
        assert config.rank == DEFAULT_RANK == 5
        assert config.epsilon == DEFAULT_EPSILON == 1e-5
        assert config.solver == "squaring"
        assert config.dangling == "zero"
        assert config.memory_budget_bytes is None

    def test_frozen(self):
        config = CSRPlusConfig()
        with pytest.raises(Exception):
            config.rank = 10


class TestValidation:
    @pytest.mark.parametrize("damping", [0.0, 1.0, -0.5, 2.0])
    def test_bad_damping(self, damping):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(damping=damping)

    def test_bad_rank(self):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(rank=0)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -1e-5])
    def test_bad_epsilon(self, epsilon):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(epsilon=epsilon)

    def test_bad_solver(self):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(solver="magic")

    def test_bad_dangling(self):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(dangling="loop")

    def test_bad_budget(self):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(memory_budget_bytes=-5)

    def test_is_value_error(self):
        """Generic callers that catch ValueError keep working."""
        with pytest.raises(ValueError):
            CSRPlusConfig(rank=-1)


class TestOverrides:
    def test_with_overrides(self):
        config = CSRPlusConfig().with_overrides(rank=12, damping=0.8)
        assert config.rank == 12
        assert config.damping == 0.8
        assert config.epsilon == DEFAULT_EPSILON

    def test_overrides_validated(self):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig().with_overrides(damping=7.0)

    def test_overrides_do_not_mutate(self):
        base = CSRPlusConfig()
        base.with_overrides(rank=9)
        assert base.rank == DEFAULT_RANK
