"""Engine-level instrumentation: prepare/query spans, stages, metrics."""

import numpy as np
import pytest

import repro.obs as obs
from repro.baselines.iterative import CSRITEngine
from repro.baselines.ni import CSRNIEngine
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import ring


def _collect_names(roots):
    names = []

    def visit(span):
        names.append(span.name)
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    return names


@pytest.fixture
def global_tracer():
    """The global tracer, reset around the test so spans are isolated."""
    tracer = obs.get_tracer()
    tracer.reset()
    yield tracer
    tracer.reset()


class TestPrepareSpans:
    def test_csr_plus_stage_taxonomy(self, global_tracer):
        CSRPlusIndex(ring(12), rank=4).prepare()
        (root,) = [r for r in global_tracer.roots() if r.name == "prepare"]
        assert root.attributes["engine"] == "CSR+"
        stages = [child.name for child in root.children]
        assert stages == ["prepare.svd", "prepare.stein", "prepare.assemble"]

    def test_stein_iteration_spans_nested_with_solver_attrs(self, global_tracer):
        index = CSRPlusIndex(ring(12), rank=4, solver="squaring").prepare()
        (root,) = [r for r in global_tracer.roots() if r.name == "prepare"]
        (stein,) = [c for c in root.children if c.name == "prepare.stein"]
        iterations = [
            c for c in stein.children if c.name == "stein.iteration"
        ]
        assert len(iterations) == index.stein_iterations
        assert all(c.attributes["solver"] == "squaring" for c in iterations)
        assert stein.attributes["iterations"] == index.stein_iterations

    def test_fixed_point_solver_also_traced(self, global_tracer):
        index = CSRPlusIndex(ring(12), rank=4, solver="fixed_point").prepare()
        names = _collect_names(global_tracer.roots())
        assert names.count("stein.iteration") == index.stein_iterations

    def test_query_span_emitted(self, global_tracer):
        index = CSRPlusIndex(ring(12), rank=4).prepare()
        index.query([0, 3, 5])
        (query_span,) = [
            r for r in global_tracer.roots() if r.name == "query"
        ]
        assert query_span.attributes["num_queries"] == 3

    def test_baselines_inherit_prepare_span(self, global_tracer):
        CSRITEngine(ring(10)).prepare()
        (root,) = [r for r in global_tracer.roots() if r.name == "prepare"]
        assert root.attributes["engine"] == "CSR-IT"

    def test_csr_ni_stage_spans(self, global_tracer):
        CSRNIEngine(ring(10), rank=3).prepare()
        names = _collect_names(global_tracer.roots())
        assert "prepare.svd" in names
        assert "prepare.kronecker" in names
        assert "prepare.assemble" in names


class TestEngineMetrics:
    def test_prepare_and_query_histograms_populated(self):
        registry = obs.get_registry()
        before_prepare = registry.histogram(
            "csrplus_prepare_seconds", labels={"engine": "CSR+"}
        ).count
        before_query = registry.histogram(
            "csrplus_query_seconds", labels={"engine": "CSR+"}
        ).count
        index = CSRPlusIndex(ring(12), rank=4).prepare()
        index.query([0])
        assert registry.histogram(
            "csrplus_prepare_seconds", labels={"engine": "CSR+"}
        ).count == before_prepare + 1
        assert registry.histogram(
            "csrplus_query_seconds", labels={"engine": "CSR+"}
        ).count == before_query + 1

    def test_stage_seconds_counter_accumulates(self):
        registry = obs.get_registry()
        svd_counter = registry.counter(
            "csrplus_stage_seconds_total",
            labels={"engine": "CSR+", "phase": "prepare", "stage": "svd"},
        )
        before = svd_counter.value
        CSRPlusIndex(ring(12), rank=4).prepare()
        assert svd_counter.value > before


class TestDisabledInstrumentation:
    def test_no_spans_or_observations_when_disabled(self, global_tracer):
        registry = obs.get_registry()
        hist = registry.histogram(
            "csrplus_prepare_seconds", labels={"engine": "CSR+"}
        )
        before = hist.count
        with obs.instrumentation(False):
            index = CSRPlusIndex(ring(12), rank=4).prepare()
            result = index.query([0, 1])
        assert global_tracer.roots() == []
        assert hist.count == before
        # results and the engine's own timers are unaffected
        assert result.shape == (12, 2)
        assert index.prepare_seconds > 0

    def test_results_bit_identical_enabled_vs_disabled(self):
        with obs.instrumentation(True):
            enabled = CSRPlusIndex(ring(16), rank=4).prepare().query([0, 5])
        with obs.instrumentation(False):
            disabled = CSRPlusIndex(ring(16), rank=4).prepare().query([0, 5])
        assert np.array_equal(enabled, disabled)


class TestHarnessSpan:
    def test_measure_emits_experiment_span(self, global_tracer):
        from repro.experiments.harness import measure

        record = measure(
            "CSR+", ring(12), np.array([0, 1]), rank=4,
            memory_budget_bytes=None, time_budget_seconds=None,
        )
        assert record.status == "ok"
        (span,) = [
            r for r in global_tracer.roots() if r.name == "experiment.measure"
        ]
        assert span.attributes["engine"] == "CSR+"
        assert span.attributes["status"] == "ok"
        # prepare/query nest under the measurement span
        child_names = [child.name for child in span.children]
        assert "prepare" in child_names
        assert "query" in child_names
