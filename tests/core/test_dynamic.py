"""Unit tests for the dynamic CSR+ rebuild-policy wrapper."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicCSRPlus
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu


@pytest.fixture
def graph():
    return chung_lu(120, 600, seed=37)


def _fresh_block(graph, queries, rank=6):
    return CSRPlusIndex(graph, rank=rank).query(queries)


class TestPolicies:
    def test_immediate_always_fresh(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6, policy="immediate")
        dyn.update_edges(added=[(0, 5)])
        assert dyn.is_fresh
        assert dyn.rebuild_count == 1
        np.testing.assert_allclose(
            dyn.query([3]), _fresh_block(dyn.graph, [3]), atol=1e-12
        )

    def test_batch_accumulates_then_rebuilds(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6, policy="batch", batch_size=3)
        dyn.update_edges(added=[(0, 7)])
        dyn.update_edges(added=[(1, 8)])
        assert dyn.staleness == 2
        assert dyn.rebuild_count == 0
        dyn.update_edges(added=[(2, 9)])  # hits the threshold
        assert dyn.is_fresh
        assert dyn.rebuild_count == 1

    def test_manual_never_auto_rebuilds(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6, policy="manual")
        for i in range(10):
            dyn.update_edges(added=[(i, (i + 11) % 120)])
        assert dyn.staleness == 10
        assert dyn.rebuild_count == 0
        dyn.refresh()
        assert dyn.is_fresh
        assert dyn.rebuild_count == 1

    def test_stale_queries_serve_old_index(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6, policy="manual")
        before = dyn.query([4]).copy()
        dyn.update_edges(added=[(0, 4), (1, 4), (2, 4)])
        np.testing.assert_array_equal(dyn.query([4]), before)  # stale
        dyn.refresh()
        after = dyn.query([4])
        assert np.max(np.abs(after - before)) > 0  # updates took effect

    def test_refresh_matches_fresh_build(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6, policy="manual")
        dyn.update_edges(added=[(5, 50), (6, 60)], removed=[next(iter(graph.edges()))])
        dyn.refresh()
        np.testing.assert_allclose(
            dyn.query([5, 50]), _fresh_block(dyn.graph, [5, 50]), atol=1e-12
        )

    def test_noop_refresh_cheap(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6)
        index_before = dyn.index
        dyn.refresh()
        assert dyn.index is index_before
        assert dyn.rebuild_count == 0


class TestSurface:
    def test_query_helpers(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6)
        assert dyn.single_source(2).shape == (120,)
        assert dyn.top_k(2, 4).size == 4

    def test_empty_update_noop(self, graph):
        dyn = DynamicCSRPlus(graph, rank=6)
        dyn.update_edges()
        assert dyn.is_fresh

    def test_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            DynamicCSRPlus(graph, policy="psychic")
        with pytest.raises(InvalidParameterError):
            DynamicCSRPlus(graph, batch_size=0)
