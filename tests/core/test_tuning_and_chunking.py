"""Unit tests for rank-selection tooling and chunked queries."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.core.tuning import (
    estimate_rank_error,
    singular_value_profile,
    suggest_rank,
)
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu, ring


@pytest.fixture(scope="module")
def graph():
    return chung_lu(200, 1000, seed=61)


class TestSingularValueProfile:
    def test_descending_and_bounded(self, graph):
        sigma = singular_value_profile(graph, 20)
        assert sigma.shape == (20,)
        assert np.all(np.diff(sigma) <= 1e-12)
        assert np.all(sigma >= 0)

    def test_clipped_to_n(self):
        sigma = singular_value_profile(ring(5), 50)
        assert sigma.size == 5

    def test_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            singular_value_profile(graph, 0)


class TestEstimateRankError:
    def test_error_positive_and_decreasing(self, graph):
        low = estimate_rank_error(graph, 5, reference_rank=120)
        high = estimate_rank_error(graph, 40, reference_rank=120)
        assert low > 0
        assert high < low

    def test_default_reference(self, graph):
        error = estimate_rank_error(graph, 10)
        assert error >= 0

    def test_reference_must_exceed_rank(self, graph):
        with pytest.raises(InvalidParameterError):
            estimate_rank_error(graph, 10, reference_rank=10)

    def test_rank_bounds(self, graph):
        with pytest.raises(InvalidParameterError):
            estimate_rank_error(graph, 0)


class TestSuggestRank:
    def test_loose_target_picks_smallest(self, graph):
        assert suggest_rank(graph, 1.0, candidates=(5, 20, 50)) == 5

    def test_tight_target_picks_larger(self, graph):
        loose = suggest_rank(graph, 1.0, candidates=(5, 20, 80))
        tight = suggest_rank(graph, 1e-5, candidates=(5, 20, 80))
        assert tight >= loose

    def test_unreachable_target_returns_largest(self, graph):
        assert suggest_rank(graph, 1e-30, candidates=(5, 20)) == 20

    def test_validation(self, graph):
        with pytest.raises(InvalidParameterError):
            suggest_rank(graph, 0.0)
        with pytest.raises(InvalidParameterError):
            suggest_rank(ring(3), 0.1, candidates=(50,))


class TestChunkedQueries:
    def test_chunks_concatenate_to_full_block(self, graph):
        index = CSRPlusIndex(graph, rank=8).prepare()
        queries = np.arange(50)
        full = index.query(queries)
        pieces = [block for _, block in index.query_chunked(queries, chunk_size=7)]
        np.testing.assert_allclose(np.hstack(pieces), full, atol=1e-12)

    def test_chunk_ids_partition_queries(self, graph):
        index = CSRPlusIndex(graph, rank=4).prepare()
        queries = np.array([3, 9, 27, 81, 162])
        seen = [chunk for chunk, _ in index.query_chunked(queries, chunk_size=2)]
        np.testing.assert_array_equal(np.concatenate(seen), queries)

    def test_invalid_chunk_size(self, graph):
        index = CSRPlusIndex(graph, rank=4)
        with pytest.raises(InvalidParameterError):
            list(index.query_chunked([0], chunk_size=0))

    def test_top_k_multi_matches_top_k(self, graph):
        index = CSRPlusIndex(graph, rank=8).prepare()
        queries = [0, 10, 199]
        table = index.top_k_multi(queries, k=5, chunk_size=2)
        assert table.shape == (3, 5)
        for row, query in zip(table, queries):
            np.testing.assert_array_equal(row, index.top_k(query, 5))

    def test_top_k_multi_validates_k(self, graph):
        index = CSRPlusIndex(graph, rank=4)
        with pytest.raises(InvalidParameterError):
            index.top_k_multi([0], k=0)
