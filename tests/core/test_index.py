"""Unit tests for the CSR+ index (Algorithm 1)."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, MemoryBudgetExceeded, NotPreparedError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu, erdos_renyi, ring
from repro.graphs.transition import transition_matrix


class TestExactnessAtFullRank:
    """With r = rank(Q), the low-rank pipeline is exact."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_exact_solver(self, seed):
        graph = erdos_renyi(40, 160, seed=seed)
        exact = ExactCoSimRank(graph, damping=0.6).all_pairs()
        index = CSRPlusIndex(graph, rank=40, epsilon=1e-12).prepare()
        np.testing.assert_allclose(index.all_pairs(), exact, atol=1e-8)

    def test_solution_satisfies_fixed_point(self, small_er):
        """S = c Q^T S Q + I, checked directly on the output."""
        n = small_er.num_nodes
        q_dense = transition_matrix(small_er).toarray()
        index = CSRPlusIndex(small_er, rank=n, epsilon=1e-13).prepare()
        s_matrix = index.all_pairs()
        residual = s_matrix - (0.6 * q_dense.T @ s_matrix @ q_dense + np.eye(n))
        assert np.max(np.abs(residual)) < 1e-7

    def test_damping_parameter_respected(self, small_er):
        exact_08 = ExactCoSimRank(small_er, damping=0.8).all_pairs()
        index = CSRPlusIndex(
            small_er, rank=small_er.num_nodes, damping=0.8, epsilon=1e-12
        ).prepare()
        np.testing.assert_allclose(index.all_pairs(), exact_08, atol=1e-7)


class TestLowRankBehaviour:
    def test_error_decreases_with_rank(self):
        graph = chung_lu(150, 700, seed=5)
        exact = ExactCoSimRank(graph).query([3, 14, 15])
        errors = []
        for rank in (5, 20, 80, 149):
            block = CSRPlusIndex(graph, rank=rank).query([3, 14, 15])
            errors.append(np.abs(block - exact).mean())
        # monotone within tolerance: each jump in rank may not strictly
        # shrink the error, but the trend over the sweep must.
        assert errors[-1] < errors[0]
        assert errors[-1] < 1e-6 or errors[-1] < errors[1]

    def test_rank_larger_than_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            CSRPlusIndex(ring(4), rank=5)

    def test_solver_variants_agree(self, small_powerlaw):
        blocks = {}
        for solver in ("squaring", "fixed_point", "direct"):
            config = CSRPlusConfig(rank=8, solver=solver, epsilon=1e-12)
            blocks[solver] = CSRPlusIndex(small_powerlaw, config).query([0, 7])
        np.testing.assert_allclose(
            blocks["squaring"], blocks["direct"], atol=1e-9
        )
        np.testing.assert_allclose(
            blocks["fixed_point"], blocks["direct"], atol=1e-9
        )

    def test_deterministic_across_instances(self, small_powerlaw):
        a = CSRPlusIndex(small_powerlaw, rank=6).query([1, 2])
        b = CSRPlusIndex(small_powerlaw, rank=6).query([1, 2])
        np.testing.assert_array_equal(a, b)


class TestQuerySemantics:
    def test_identity_part_added_at_query_rows(self, small_er):
        index = CSRPlusIndex(small_er, rank=10).prepare()
        queries = [4, 9]
        with_id = index.query(queries)
        # recompute by hand: c * Z U[q]^T + I columns
        u, _, _, z = index.factors
        raw = 0.6 * (z @ u[queries, :].T)
        raw[4, 0] += 1.0
        raw[9, 1] += 1.0
        np.testing.assert_allclose(with_id, raw)

    def test_duplicate_queries_give_identical_columns(self, small_er):
        block = CSRPlusIndex(small_er, rank=5).query([3, 3])
        np.testing.assert_array_equal(block[:, 0], block[:, 1])

    def test_single_source_column_matches_multi(self, small_er):
        # gemv vs gemm can differ in the last float bit, hence allclose
        index = CSRPlusIndex(small_er, rank=5).prepare()
        block = index.query([2, 7])
        np.testing.assert_allclose(index.single_source(2), block[:, 0], atol=1e-14)
        np.testing.assert_allclose(index.single_source(7), block[:, 1], atol=1e-14)

    def test_all_pairs_is_query_of_everything(self, small_er):
        index = CSRPlusIndex(small_er, rank=5).prepare()
        np.testing.assert_array_equal(
            index.all_pairs(),
            index.query(np.arange(small_er.num_nodes)),
        )


class TestFactorsAndMemory:
    def test_factor_shapes(self, small_powerlaw):
        n = small_powerlaw.num_nodes
        index = CSRPlusIndex(small_powerlaw, rank=7).prepare()
        u, sigma, p, z = index.factors
        assert u.shape == (n, 7)
        assert sigma.shape == (7,)
        assert p.shape == (7, 7)
        assert z.shape == (n, 7)

    def test_factors_require_prepare(self, small_er):
        index = CSRPlusIndex(small_er, rank=5)
        with pytest.raises(NotPreparedError):
            _ = index.factors

    def test_v_released_after_prepare(self, small_er):
        index = CSRPlusIndex(small_er, rank=5).prepare()
        assert "precompute/V" not in index.memory.live_breakdown()

    def test_memory_linear_in_n(self):
        """Peak accounted memory follows O(rn), not O(n^2)."""
        peaks = []
        for n in (200, 400, 800):
            graph = erdos_renyi(n, 4 * n, seed=9)
            index = CSRPlusIndex(graph, rank=5).prepare()
            index.query(list(range(10)))
            peaks.append(index.memory.peak_bytes)
        growth = peaks[-1] / peaks[0]
        assert growth < 8  # quadratic would give ~16x

    def test_budget_enforced_on_query_result(self, small_er):
        config = CSRPlusConfig(rank=5, memory_budget_bytes=30_000)
        index = CSRPlusIndex(small_er, config).prepare()
        with pytest.raises(MemoryBudgetExceeded):
            index.all_pairs()  # n x n result breaks the small budget

    def test_stein_iterations_recorded(self, small_er):
        index = CSRPlusIndex(small_er, rank=5).prepare()
        assert index.stein_iterations == 6  # paper bound 5, loop runs k=0..5


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, small_powerlaw):
        index = CSRPlusIndex(small_powerlaw, rank=6).prepare()
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = CSRPlusIndex.load(path, small_powerlaw)
        np.testing.assert_array_equal(
            index.query([1, 5, 9]), loaded.query([1, 5, 9])
        )
        assert loaded.config.rank == 6
        assert loaded.is_prepared

    def test_save_requires_prepare(self, tmp_path, small_er):
        index = CSRPlusIndex(small_er, rank=5)
        with pytest.raises(NotPreparedError):
            index.save(tmp_path / "x.npz")

    def test_load_rejects_wrong_graph(self, tmp_path, small_er):
        index = CSRPlusIndex(small_er, rank=5).prepare()
        path = tmp_path / "index.npz"
        index.save(path)
        with pytest.raises(InvalidParameterError):
            CSRPlusIndex.load(path, ring(3))


class TestEdgeCaseGraphs:
    def test_graph_without_edges(self):
        index = CSRPlusIndex(DiGraph(5), rank=2).prepare()
        np.testing.assert_allclose(index.all_pairs(), np.eye(5), atol=1e-12)

    def test_single_node(self):
        index = CSRPlusIndex(DiGraph(1), rank=1).prepare()
        assert index.single_pair(0, 0) == pytest.approx(1.0)

    def test_self_loop_graph(self):
        graph = DiGraph(2, [(0, 0), (0, 1)])
        exact = ExactCoSimRank(graph).all_pairs()
        index = CSRPlusIndex(graph, rank=2, epsilon=1e-12).prepare()
        np.testing.assert_allclose(index.all_pairs(), exact, atol=1e-8)

    def test_ring_similarity_structure(self):
        """On a directed ring every node is similar only to itself."""
        index = CSRPlusIndex(ring(6), rank=6, epsilon=1e-12).prepare()
        s_matrix = index.all_pairs()
        off_diag = s_matrix - np.diag(np.diag(s_matrix))
        assert np.max(np.abs(off_diag)) < 1e-8
        np.testing.assert_allclose(np.diag(s_matrix), 1.0 / (1.0 - 0.6), atol=1e-6)
