"""Unit tests for the SimilarityEngine interface and query plumbing."""

import time

import numpy as np
import pytest

from repro.core.base import SimilarityEngine, normalize_queries
from repro.core.index import CSRPlusIndex
from repro.errors import (
    InvalidParameterError,
    QueryError,
    TimeBudgetExceeded,
)
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import ring


class TestNormalizeQueries:
    def test_scalar(self):
        np.testing.assert_array_equal(normalize_queries(3, 10), [3])

    def test_list(self):
        np.testing.assert_array_equal(normalize_queries([1, 5, 2], 10), [1, 5, 2])

    def test_numpy_array(self):
        arr = np.array([0, 9])
        np.testing.assert_array_equal(normalize_queries(arr, 10), [0, 9])

    def test_duplicates_preserved(self):
        np.testing.assert_array_equal(normalize_queries([2, 2], 10), [2, 2])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            normalize_queries([], 10)

    def test_out_of_range_rejected(self):
        with pytest.raises(QueryError):
            normalize_queries([10], 10)
        with pytest.raises(QueryError):
            normalize_queries([-1], 10)


class _CountingEngine(SimilarityEngine):
    """Minimal engine: similarity = identity; counts prepare calls."""

    name = "counting"

    def __init__(self, graph, **kwargs):
        super().__init__(graph, **kwargs)
        self.prepare_calls = 0

    def _prepare_impl(self):
        self.prepare_calls += 1

    def _query_impl(self, query_ids):
        out = np.zeros((self.num_nodes, query_ids.size))
        out[query_ids, np.arange(query_ids.size)] = 1.0
        return out


class TestEngineProtocol:
    def test_prepare_idempotent(self):
        engine = _CountingEngine(ring(5))
        engine.prepare().prepare()
        engine.query(0)
        assert engine.prepare_calls == 1
        assert engine.is_prepared

    def test_query_auto_prepares(self):
        engine = _CountingEngine(ring(5))
        engine.query([1, 2])
        assert engine.prepare_calls == 1

    def test_query_shape_and_order(self):
        engine = _CountingEngine(ring(6))
        block = engine.query([4, 1])
        assert block.shape == (6, 2)
        assert block[4, 0] == 1.0
        assert block[1, 1] == 1.0

    def test_single_source_and_pair(self):
        engine = _CountingEngine(ring(6))
        column = engine.single_source(2)
        assert column.shape == (6,)
        assert engine.single_pair(2, 2) == 1.0
        assert engine.single_pair(0, 2) == 0.0

    def test_single_pair_validates_row(self):
        engine = _CountingEngine(ring(4))
        with pytest.raises(QueryError):
            engine.single_pair(9, 1)

    def test_all_pairs(self):
        engine = _CountingEngine(ring(4))
        np.testing.assert_array_equal(engine.all_pairs(), np.eye(4))

    def test_bad_damping(self):
        with pytest.raises(InvalidParameterError):
            _CountingEngine(ring(3), damping=1.5)

    def test_timers_recorded(self):
        engine = _CountingEngine(ring(4))
        engine.query(0)
        assert engine.prepare_seconds >= 0.0
        assert engine.last_query_seconds >= 0.0


class TestTopK:
    def test_top_k_excludes_self(self):
        index = CSRPlusIndex(ring(8), rank=4).prepare()
        top = index.top_k(3, 3)
        assert 3 not in top
        assert len(top) == 3

    def test_top_k_include_self(self):
        index = CSRPlusIndex(ring(8), rank=8).prepare()
        top = index.top_k(3, 1, exclude_self=False)
        # the diagonal dominates, so the node itself ranks first
        assert top[0] == 3

    def test_top_k_deterministic_ties(self):
        engine = _CountingEngine(ring(6))
        # every other node scores 0 -> ties broken by ascending id
        assert engine.top_k(2, 3).tolist() == [0, 1, 3]

    def test_top_k_validates_k(self):
        engine = _CountingEngine(ring(4))
        with pytest.raises(InvalidParameterError):
            engine.top_k(0, 0)

    def test_top_k_clips_k(self):
        engine = _CountingEngine(ring(4))
        assert engine.top_k(0, 100).size == 3  # n-1 after excluding self


class _SlowEngine(SimilarityEngine):
    """Engine that polls the time budget from a long loop."""

    name = "slow"

    def _prepare_impl(self):
        deadline = time.perf_counter() + 5.0
        while time.perf_counter() < deadline:
            self.check_time_budget()
            time.sleep(0.005)

    def _query_impl(self, query_ids):  # pragma: no cover - never reached
        return np.zeros((self.num_nodes, query_ids.size))


class TestTimeBudget:
    def test_budget_triggers(self):
        engine = _SlowEngine(ring(3))
        engine.time_budget_seconds = 0.05
        with pytest.raises(TimeBudgetExceeded) as err:
            engine.prepare()
        assert err.value.budget_seconds == 0.05
        assert "prepare" in str(err.value)

    def test_no_budget_no_check(self):
        engine = _CountingEngine(ring(3))
        engine.check_time_budget()  # no-op without a budget
