"""Unit tests for rank truncation (one SVD, many ranks)."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError, NotPreparedError
from repro.graphs.generators import chung_lu


@pytest.fixture(scope="module")
def base():
    graph = chung_lu(150, 750, seed=67)
    return CSRPlusIndex(graph, rank=40).prepare()


class TestTruncateToRank:
    @pytest.mark.parametrize("rank", [1, 5, 20, 40])
    def test_matches_fresh_build(self, base, rank):
        truncated = base.truncate_to_rank(rank)
        fresh = CSRPlusIndex(base.graph, rank=rank).prepare()
        np.testing.assert_allclose(
            truncated.query([0, 10]), fresh.query([0, 10]), atol=1e-6
        )

    def test_factor_shapes(self, base):
        truncated = base.truncate_to_rank(7)
        u, sigma, p, z = truncated.factors
        n = base.graph.num_nodes
        assert u.shape == (n, 7)
        assert sigma.shape == (7,)
        assert p.shape == (7, 7)
        assert z.shape == (n, 7)

    def test_original_untouched(self, base):
        before = base.query([3]).copy()
        base.truncate_to_rank(5)
        np.testing.assert_array_equal(base.query([3]), before)
        assert base.config.rank == 40

    def test_validates_rank(self, base):
        with pytest.raises(InvalidParameterError):
            base.truncate_to_rank(0)
        with pytest.raises(InvalidParameterError):
            base.truncate_to_rank(41)  # cannot go UP without a new SVD

    def test_requires_prepared(self):
        index = CSRPlusIndex(chung_lu(50, 200, seed=68), rank=10)
        with pytest.raises(NotPreparedError):
            index.truncate_to_rank(5)

    def test_chain_truncations(self, base):
        """Truncating twice equals truncating once to the final rank."""
        twice = base.truncate_to_rank(20).truncate_to_rank(6)
        once = base.truncate_to_rank(6)
        np.testing.assert_allclose(
            twice.query([1]), once.query([1]), atol=1e-10
        )

    def test_float32_preserved(self):
        graph = chung_lu(80, 400, seed=69)
        base32 = CSRPlusIndex(graph, rank=20, dtype="float32").prepare()
        truncated = base32.truncate_to_rank(5)
        assert truncated.factors[0].dtype == np.float32
        assert truncated.factors[3].dtype == np.float32
