"""Unit tests for the norm-bound pruned top-k search."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.core.topk import top_k_pruned
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu, preferential_attachment, ring


@pytest.fixture(scope="module")
def skewed_index():
    graph = preferential_attachment(2_000, 4, seed=41)
    return CSRPlusIndex(graph, rank=8).prepare()


class TestExactness:
    @pytest.mark.parametrize("query", [0, 17, 1999])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_flat_top_k_scores(self, skewed_index, query, k):
        result = top_k_pruned(skewed_index, query, k)
        flat = skewed_index.top_k(query, k)
        flat_scores = skewed_index.single_source(query)[flat]
        # identical score multisets (ordering of fp-ties may differ)
        np.testing.assert_allclose(
            np.sort(result.scores), np.sort(flat_scores), atol=1e-10
        )

    def test_scores_match_engine_values(self, skewed_index):
        result = top_k_pruned(skewed_index, 5, 10)
        column = skewed_index.single_source(5)
        np.testing.assert_allclose(
            result.scores, column[result.nodes], atol=1e-10
        )

    def test_descending_order(self, skewed_index):
        result = top_k_pruned(skewed_index, 3, 15)
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_self_excluded_by_default(self, skewed_index):
        result = top_k_pruned(skewed_index, 7, 10)
        assert 7 not in result.nodes

    def test_self_included_ranks_first(self, skewed_index):
        result = top_k_pruned(skewed_index, 7, 3, exclude_self=False)
        assert result.nodes[0] == 7  # diagonal +1 dominates


class TestPruningEffectiveness:
    def test_skewed_graph_scores_fewer_than_n(self, skewed_index):
        n = skewed_index.num_nodes
        result = top_k_pruned(skewed_index, 11, 10)
        assert result.candidates_scored < n

    def test_uniform_graph_still_correct(self):
        """On a ring (all norms equal) pruning cannot help, but the
        result must still be exact."""
        index = CSRPlusIndex(ring(50), rank=10).prepare()
        result = top_k_pruned(index, 4, 5)
        flat = index.top_k(4, 5)
        np.testing.assert_allclose(
            np.sort(result.scores),
            np.sort(index.single_source(4)[flat]),
            atol=1e-10,
        )


class TestValidation:
    def test_bad_k(self, skewed_index):
        with pytest.raises(InvalidParameterError):
            top_k_pruned(skewed_index, 0, 0)

    def test_bad_query(self, skewed_index):
        with pytest.raises(InvalidParameterError):
            top_k_pruned(skewed_index, 10**6, 3)

    def test_auto_prepares(self):
        index = CSRPlusIndex(chung_lu(100, 500, seed=42), rank=5)
        result = top_k_pruned(index, 0, 3)
        assert result.nodes.size == 3
