"""Unit tests for the norm-bound pruned top-k searches.

Two kernels share the Cauchy–Schwarz prune: the scalar
:func:`~repro.core.topk.top_k_pruned` (the reference oracle) and the
blockwise :func:`~repro.core.topk.top_k_blockwise` (the production
path).  The regression classes at the bottom pin the pruning
*behaviour*, not just correctness: skewed graphs must skip blocks and
bound the scored fraction, flat-norm graphs must degrade to a clean
full scan, and the scalar oracle must agree with the blockwise kernel
candidate for candidate.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.core.topk import top_k_blockwise, top_k_pruned
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu, preferential_attachment, ring


@pytest.fixture(scope="module")
def skewed_index():
    graph = preferential_attachment(2_000, 4, seed=41)
    return CSRPlusIndex(graph, rank=8).prepare()


class TestExactness:
    @pytest.mark.parametrize("query", [0, 17, 1999])
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_matches_flat_top_k_scores(self, skewed_index, query, k):
        result = top_k_pruned(skewed_index, query, k)
        flat = skewed_index.top_k(query, k)
        flat_scores = skewed_index.single_source(query)[flat]
        # identical score multisets (ordering of fp-ties may differ)
        np.testing.assert_allclose(
            np.sort(result.scores), np.sort(flat_scores), atol=1e-10
        )

    def test_scores_match_engine_values(self, skewed_index):
        result = top_k_pruned(skewed_index, 5, 10)
        column = skewed_index.single_source(5)
        np.testing.assert_allclose(
            result.scores, column[result.nodes], atol=1e-10
        )

    def test_descending_order(self, skewed_index):
        result = top_k_pruned(skewed_index, 3, 15)
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_self_excluded_by_default(self, skewed_index):
        result = top_k_pruned(skewed_index, 7, 10)
        assert 7 not in result.nodes

    def test_self_included_ranks_first(self, skewed_index):
        result = top_k_pruned(skewed_index, 7, 3, exclude_self=False)
        assert result.nodes[0] == 7  # diagonal +1 dominates


class TestPruningEffectiveness:
    def test_skewed_graph_scores_fewer_than_n(self, skewed_index):
        n = skewed_index.num_nodes
        result = top_k_pruned(skewed_index, 11, 10)
        assert result.candidates_scored < n

    def test_uniform_graph_still_correct(self):
        """On a ring (all norms equal) pruning cannot help, but the
        result must still be exact."""
        index = CSRPlusIndex(ring(50), rank=10).prepare()
        result = top_k_pruned(index, 4, 5)
        flat = index.top_k(4, 5)
        np.testing.assert_allclose(
            np.sort(result.scores),
            np.sort(index.single_source(4)[flat]),
            atol=1e-10,
        )


class TestValidation:
    def test_bad_k(self, skewed_index):
        with pytest.raises(InvalidParameterError):
            top_k_pruned(skewed_index, 0, 0)

    def test_bad_query(self, skewed_index):
        with pytest.raises(InvalidParameterError):
            top_k_pruned(skewed_index, 10**6, 3)

    def test_auto_prepares(self):
        index = CSRPlusIndex(chung_lu(100, 500, seed=42), rank=5)
        result = top_k_pruned(index, 0, 3)
        assert result.nodes.size == 3


SEEDS = [0, 11, 500, 1999]


class TestBlockwisePruning:
    """Regression pins on the blockwise kernel's pruning behaviour."""

    def test_skewed_graph_skips_blocks(self, skewed_index):
        """Norm-ordered blocks + a skewed norm profile must actually
        prune: blocks skipped, scored fraction bounded."""
        n = skewed_index.num_nodes
        results = top_k_blockwise(skewed_index, SEEDS, 10, block_rows=128)
        for seed, result in zip(SEEDS, results):
            assert result.blocks_skipped > 0, f"seed {seed} skipped nothing"
            assert result.candidates_scored < 0.5 * n, (
                f"seed {seed} scored {result.candidates_scored}/{n}"
            )
            assert (
                result.blocks_scanned + result.blocks_skipped
                == -(-n // 128)  # ceil: every block is either scanned or skipped
            )

    def test_flat_norm_graph_degrades_to_full_scan(self):
        """On a ring every ||Z[x]|| is equal: no block's bound can drop
        below the floor, so the kernel scans everything — gracefully,
        once per block, not with pathological re-sorting."""
        index = CSRPlusIndex(ring(60), rank=10).prepare()
        results = top_k_blockwise(index, [4, 30], 5, block_rows=16)
        for seed, result in zip([4, 30], results):
            assert result.blocks_skipped == 0
            assert result.blocks_scanned == -(-60 // 16)
            assert result.candidates_scored == 59  # all but self
            np.testing.assert_array_equal(
                result.nodes, index.top_k(seed, 5)
            )

    def test_scalar_oracle_agrees_with_blockwise(self, skewed_index):
        """top_k_pruned stays the reference: same nodes, same scores
        (up to fp noise of the different accumulation), and the same
        visit order means comparable work."""
        for seed in SEEDS:
            oracle = top_k_pruned(skewed_index, seed, 10)
            block = top_k_blockwise(
                skewed_index, [seed], 10, block_rows=128
            )[0]
            np.testing.assert_array_equal(block.nodes, oracle.nodes)
            np.testing.assert_allclose(
                block.scores, oracle.scores, atol=1e-10
            )

    def test_blockwise_never_scores_more_than_oracle_plus_block_slack(
        self, skewed_index
    ):
        """Block granularity is the only extra work: the blockwise scan
        stops within one block of where the scalar oracle stopped."""
        block_rows = 128
        for seed in SEEDS:
            oracle = top_k_pruned(skewed_index, seed, 10)
            block = top_k_blockwise(
                skewed_index, [seed], 10, block_rows=block_rows
            )[0]
            assert (
                block.candidates_scored
                <= oracle.candidates_scored + block_rows
            )

    def test_deeper_k_scans_more(self, skewed_index):
        """A deeper ranking has a lower floor, so pruning starts later."""
        shallow = top_k_blockwise(skewed_index, [11], 5, block_rows=128)[0]
        deep = top_k_blockwise(skewed_index, [11], 200, block_rows=128)[0]
        assert deep.candidates_scored >= shallow.candidates_scored
        assert deep.blocks_skipped <= shallow.blocks_skipped
