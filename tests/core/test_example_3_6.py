"""End-to-end check of the paper's worked Example 3.6 and Figure 1.

These tests pin the reproduction to the paper's own arithmetic: the
Figure-1 graph structure, the printed transition matrix, the singular
values, the rank-3 multi-source result, and the duplicate-PPR
observation of Example 1.1.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.datasets.toy import (
    EXAMPLE_3_6_DAMPING,
    EXAMPLE_3_6_RANK,
    FIGURE1_LABELS,
    FIGURE1_NODES,
    example_3_6_expected,
    example_3_6_queries,
    figure1_graph,
    figure1_node_ids,
)
from repro.graphs.transition import transition_matrix
from repro.linalg.svd import truncated_svd


class TestFigure1Structure:
    def test_size(self):
        graph = figure1_graph()
        assert graph.num_nodes == 6
        assert graph.num_edges == 11

    def test_one_hop_in_neighbours_of_b_and_d_share_a_and_e(self):
        """Example 1.1: in(b) and in(d) share exactly {a, e}."""
        graph = figure1_graph()
        ids = figure1_node_ids()
        in_b = set(graph.in_neighbors(ids["b"]).tolist())
        in_d = set(graph.in_neighbors(ids["d"]).tolist())
        assert in_b & in_d == {ids["a"], ids["e"]}

    def test_c_and_f_share_in_neighbour_d(self):
        """Example 1.1: c and f have the same in-neighbour set {d}."""
        graph = figure1_graph()
        ids = figure1_node_ids()
        assert graph.in_neighbors(ids["c"]).tolist() == [ids["d"]]
        assert graph.in_neighbors(ids["f"]).tolist() == [ids["d"]]

    def test_identical_ppr_from_second_hop(self):
        """Example 1.1: p_b^(k) == p_d^(k) for every k >= 2."""
        graph = figure1_graph()
        ids = figure1_node_ids()
        q_matrix = transition_matrix(graph).toarray()
        p_b = np.eye(6)[:, ids["b"]]
        p_d = np.eye(6)[:, ids["d"]]
        for hop in range(1, 6):
            p_b = q_matrix @ p_b
            p_d = q_matrix @ p_d
            if hop >= 2:
                np.testing.assert_allclose(p_b, p_d, atol=1e-12)

    def test_labels(self):
        assert FIGURE1_LABELS == {"a": "art", "b": "law", "d": "law"}
        assert FIGURE1_NODES == ("a", "b", "c", "d", "e", "f")


class TestTransitionMatrixOfExample:
    def test_printed_q(self):
        """The Q block printed in Example 3.6."""
        q_matrix = transition_matrix(figure1_graph()).toarray()
        third = 1.0 / 3.0
        expected = np.array(
            [
                [0, third, 0, third, 0, 0],
                [0, 0, 0, 0, 0, 0],
                [0, third, 0, 0, 0.5, 0],
                [1, 0, 1, 0, 0, 1],
                [0, third, 0, third, 0, 0],
                [0, 0, 0, third, 0.5, 0],
            ]
        )
        np.testing.assert_allclose(q_matrix, expected, atol=1e-12)

    def test_printed_singular_values(self):
        """Sigma = diag(1.73, 0.87, 0.54) at rank 3."""
        q_matrix = transition_matrix(figure1_graph())
        svd = truncated_svd(q_matrix, 3)
        np.testing.assert_allclose(
            svd.sigma, [1.73, 0.87, 0.54], atol=5e-3
        )


class TestWorkedExample:
    def test_rank3_multi_source_result(self):
        """CSR+ with r=3, c=0.6, Q={b,d} reproduces the printed block."""
        graph = figure1_graph()
        index = CSRPlusIndex(
            graph, rank=EXAMPLE_3_6_RANK, damping=EXAMPLE_3_6_DAMPING
        ).prepare()
        block = index.query(example_3_6_queries())
        np.testing.assert_allclose(block, example_3_6_expected(), atol=5e-3)

    def test_columns_b_and_d_symmetric_pattern(self):
        """b and d are structurally exchangeable in the result."""
        block = CSRPlusIndex(
            figure1_graph(), rank=3, damping=0.6
        ).query(example_3_6_queries())
        ids = figure1_node_ids()
        # [S]_{b,b} == [S]_{d,d} and [S]_{d,b} == [S]_{b,d}
        assert block[ids["b"], 0] == pytest.approx(block[ids["d"], 1], abs=1e-9)
        assert block[ids["d"], 0] == pytest.approx(block[ids["b"], 1], abs=1e-9)

    def test_against_li_et_al_at_same_rank(self):
        """Example 3.6's closing claim: same result as Li et al. [4]."""
        from repro.baselines.ni import CSRNIEngine

        graph = figure1_graph()
        queries = example_3_6_queries()
        plus = CSRPlusIndex(graph, rank=3, damping=0.6).query(queries)
        ni = CSRNIEngine(graph, rank=3, damping=0.6).query(queries)
        np.testing.assert_allclose(plus, ni, atol=1e-10)
