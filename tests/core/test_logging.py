"""Logging instrumentation tests."""

import logging

import numpy as np

from repro.core.index import CSRPlusIndex
from repro.experiments.harness import measure
from repro.graphs.generators import chung_lu, ring


class TestEngineLogging:
    def test_prepare_and_query_logged_at_debug(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.engines"):
            index = CSRPlusIndex(ring(10), rank=4).prepare()
            index.query([0, 1])
        messages = [r.message for r in caplog.records]
        assert any("prepared" in m for m in messages)
        assert any("query" in m for m in messages)

    def test_silent_at_default_level(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.engines"):
            CSRPlusIndex(ring(10), rank=4).prepare()
        assert not caplog.records


class TestHarnessLogging:
    def test_budget_crash_logged_at_info(self, caplog):
        graph = chung_lu(500, 2500, seed=44)
        with caplog.at_level(logging.INFO, logger="repro.experiments"):
            record = measure(
                "CSR-NI", graph, np.array([0]),
                memory_budget_bytes=1_000_000, time_budget_seconds=None,
            )
        assert record.status == "memory"
        assert any("memory budget" in r.message for r in caplog.records)
