"""Unit tests for re-damping an index without recomputing the SVD."""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu


@pytest.fixture(scope="module")
def base_index():
    graph = chung_lu(150, 750, seed=91)
    return CSRPlusIndex(graph, rank=10, damping=0.6).prepare()


class TestRebuildForDamping:
    def test_matches_fresh_index(self, base_index):
        rebuilt = base_index.rebuild_for_damping(0.8)
        fresh = CSRPlusIndex(base_index.graph, rank=10, damping=0.8).prepare()
        np.testing.assert_allclose(
            rebuilt.query([0, 5, 9]), fresh.query([0, 5, 9]), atol=1e-10
        )

    def test_shares_u_factor(self, base_index):
        rebuilt = base_index.rebuild_for_damping(0.4)
        assert rebuilt.factors[0] is base_index.factors[0]

    def test_original_unchanged(self, base_index):
        before = base_index.query([3]).copy()
        base_index.rebuild_for_damping(0.9)
        np.testing.assert_array_equal(base_index.query([3]), before)
        assert base_index.damping == 0.6

    def test_new_config_recorded(self, base_index):
        rebuilt = base_index.rebuild_for_damping(0.3)
        assert rebuilt.damping == 0.3
        assert rebuilt.config.rank == 10
        assert rebuilt.is_prepared

    def test_validates_damping(self, base_index):
        with pytest.raises(InvalidParameterError):
            base_index.rebuild_for_damping(1.0)

    def test_requires_prepared(self):
        graph = chung_lu(50, 200, seed=92)
        index = CSRPlusIndex(graph, rank=5)
        from repro.errors import NotPreparedError

        with pytest.raises(NotPreparedError):
            index.rebuild_for_damping(0.5)

    def test_chain_of_redampings(self, base_index):
        """Re-damping a re-damped index still matches a fresh build."""
        chained = base_index.rebuild_for_damping(0.8).rebuild_for_damping(0.5)
        fresh = CSRPlusIndex(base_index.graph, rank=10, damping=0.5).prepare()
        np.testing.assert_allclose(
            chained.query([1]), fresh.query([1]), atol=1e-10
        )

    def test_float32_rebuild_matches_fresh(self):
        """Regression: a float32 sibling must apply prepare()'s dtype
        policy — Z computed in float64 from the stored U, then cast —
        not inherit a float64 Z built from the degraded float32 U."""
        graph = chung_lu(120, 600, seed=93)
        base = CSRPlusIndex(graph, rank=8, damping=0.6, dtype="float32").prepare()
        rebuilt = base.rebuild_for_damping(0.8)
        fresh = CSRPlusIndex(
            graph, rank=8, damping=0.8, dtype="float32"
        ).prepare()
        assert rebuilt.factors[3].dtype == np.float32
        assert rebuilt.query([0]).dtype == np.float32
        np.testing.assert_allclose(
            rebuilt.query([0, 5, 9]), fresh.query([0, 5, 9]), atol=1e-5
        )
        live_rebuilt = rebuilt.memory.live_breakdown()
        live_fresh = fresh.memory.live_breakdown()
        assert live_rebuilt["precompute/Z"] == live_fresh["precompute/Z"]

    def test_save_load_preserves_redamping_ability(self, base_index, tmp_path):
        path = tmp_path / "index.npz"
        base_index.save(path)
        loaded = CSRPlusIndex.load(path, base_index.graph)
        rebuilt = loaded.rebuild_for_damping(0.7)
        fresh = CSRPlusIndex(base_index.graph, rank=10, damping=0.7).prepare()
        np.testing.assert_allclose(
            rebuilt.query([2]), fresh.query([2]), atol=1e-10
        )
