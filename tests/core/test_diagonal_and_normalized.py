"""Unit tests for the O(nr) diagonal and cosine-normalised queries."""

import numpy as np
import pytest

from repro.baselines.exact import ExactCoSimRank
from repro.core.index import CSRPlusIndex
from repro.errors import NotPreparedError
from repro.graphs.generators import chung_lu, ring
from repro.graphs.transition import transition_matrix


@pytest.fixture(scope="module")
def graph():
    return chung_lu(120, 600, seed=57)


class TestDiagonal:
    def test_matches_all_pairs_diagonal(self, graph):
        index = CSRPlusIndex(graph, rank=15).prepare()
        np.testing.assert_allclose(
            index.diagonal(), np.diag(index.all_pairs()), atol=1e-10
        )

    def test_full_rank_matches_exact(self, graph):
        index = CSRPlusIndex(graph, rank=120, epsilon=1e-12).prepare()
        exact_diag = np.diag(ExactCoSimRank(graph).all_pairs())
        np.testing.assert_allclose(index.diagonal(), exact_diag, atol=1e-7)

    def test_diagonal_not_constant(self, graph):
        """The §1 nuance: unlike SimRank, self-similarity varies."""
        index = CSRPlusIndex(graph, rank=120, epsilon=1e-12).prepare()
        diag = index.diagonal()
        assert diag.max() - diag.min() > 1e-3

    def test_requires_prepare(self, graph):
        with pytest.raises(NotPreparedError):
            CSRPlusIndex(graph, rank=5).diagonal()


class TestQueryNormalized:
    def test_self_similarity_becomes_one(self, graph):
        index = CSRPlusIndex(graph, rank=120, epsilon=1e-12).prepare()
        queries = [3, 40, 119]
        block = index.query_normalized(queries)
        for col, q in enumerate(queries):
            assert block[q, col] == pytest.approx(1.0, abs=1e-9)

    def test_matches_manual_normalisation(self, graph):
        index = CSRPlusIndex(graph, rank=20).prepare()
        queries = [5, 9]
        raw = index.query(queries)
        diag = index.diagonal()
        manual = raw / np.sqrt(
            np.abs(diag)[:, None] * np.abs(diag)[queries][None, :]
        )
        np.testing.assert_allclose(
            index.query_normalized(queries), manual, atol=1e-9
        )

    def test_normalised_scores_bounded_at_full_rank(self, graph):
        """Cauchy-Schwarz per term: |S[x,q]| <= sqrt(S[x,x] S[q,q])."""
        index = CSRPlusIndex(graph, rank=120, epsilon=1e-12).prepare()
        block = index.query_normalized(list(range(0, 120, 7)))
        assert block.max() <= 1.0 + 1e-8
        assert block.min() >= -1.0 - 1e-8

    def test_ring_normalised_identity(self):
        index = CSRPlusIndex(ring(8), rank=8, epsilon=1e-12).prepare()
        block = index.query_normalized([0, 4])
        np.testing.assert_allclose(block, np.eye(8)[:, [0, 4]], atol=1e-8)


class TestUniformDanglingPolicy:
    """Engine-level correctness under the 'uniform' dangling policy."""

    def test_csr_plus_matches_exact_under_uniform(self):
        graph = chung_lu(60, 250, seed=58)
        exact = ExactCoSimRank(graph, dangling="uniform").all_pairs()
        index = CSRPlusIndex(
            graph, rank=60, epsilon=1e-12, dangling="uniform"
        ).prepare()
        np.testing.assert_allclose(index.all_pairs(), exact, atol=1e-7)

    def test_uniform_differs_from_zero_when_dangling_exists(self):
        graph = chung_lu(60, 250, seed=58)
        if not graph.dangling_nodes().size:
            pytest.skip("stand-in has no dangling nodes")
        zero = ExactCoSimRank(graph, dangling="zero").all_pairs()
        uniform = ExactCoSimRank(graph, dangling="uniform").all_pairs()
        assert np.max(np.abs(zero - uniform)) > 1e-9
