"""Unit tests for the memory meter."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.memory import MemoryMeter, array_nbytes, nbytes_of, sparse_nbytes
from repro.errors import InvalidParameterError, MemoryBudgetExceeded


class TestByteHelpers:
    def test_array_nbytes(self):
        assert array_nbytes((10, 20)) == 1600
        assert array_nbytes((3,), np.float32) == 12
        assert array_nbytes(()) == 8  # scalar

    def test_array_nbytes_negative_dim(self):
        with pytest.raises(InvalidParameterError):
            array_nbytes((-1, 5))

    def test_sparse_nbytes_csr(self):
        matrix = sparse.identity(100, format="csr")
        expected = matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        assert sparse_nbytes(matrix) == expected

    def test_sparse_nbytes_coo(self):
        matrix = sparse.identity(50, format="coo")
        assert sparse_nbytes(matrix) > 0

    def test_nbytes_of_dense(self):
        assert nbytes_of(np.zeros((4, 4))) == 128

    def test_nbytes_of_sparse(self):
        matrix = sparse.identity(10, format="csr")
        assert nbytes_of(matrix) == sparse_nbytes(matrix)


class TestMeterAccounting:
    def test_charge_and_peak(self):
        meter = MemoryMeter()
        meter.charge("a", 100)
        meter.charge("b", 50)
        assert meter.current_bytes == 150
        assert meter.peak_bytes == 150
        meter.release("a")
        assert meter.current_bytes == 50
        assert meter.peak_bytes == 150  # peak survives releases

    def test_recharge_replaces(self):
        meter = MemoryMeter()
        meter.charge("s", 100)
        meter.charge("s", 30)
        assert meter.current_bytes == 30
        assert meter.peak_bytes == 100

    def test_high_water_per_label(self):
        meter = MemoryMeter()
        meter.charge("x", 10)
        meter.charge("x", 5)
        assert meter.high_water_breakdown()["x"] == 10
        assert meter.live_breakdown()["x"] == 5

    def test_release_unknown_is_noop(self):
        meter = MemoryMeter()
        meter.release("ghost")
        assert meter.current_bytes == 0

    def test_reset(self):
        meter = MemoryMeter()
        meter.charge("a", 10)
        meter.reset()
        assert meter.current_bytes == 0
        assert meter.peak_bytes == 0

    def test_charge_array(self):
        meter = MemoryMeter()
        meter.charge_array("arr", np.zeros(10))
        assert meter.current_bytes == 80

    def test_negative_charge_rejected(self):
        meter = MemoryMeter()
        with pytest.raises(InvalidParameterError):
            meter.charge("a", -1)


class TestBudget:
    def test_budget_enforced(self):
        meter = MemoryMeter(budget_bytes=100)
        meter.charge("a", 60)
        with pytest.raises(MemoryBudgetExceeded) as err:
            meter.charge("b", 60)
        assert err.value.budget_bytes == 100
        assert err.value.requested_bytes == 120
        # failed charge must not be recorded
        assert meter.current_bytes == 60

    def test_replacing_label_within_budget(self):
        meter = MemoryMeter(budget_bytes=100)
        meter.charge("a", 90)
        meter.charge("a", 95)  # replaces, stays within budget
        assert meter.current_bytes == 95

    def test_require_checks_without_recording(self):
        meter = MemoryMeter(budget_bytes=100)
        meter.require("big", 80)
        assert meter.current_bytes == 0
        with pytest.raises(MemoryBudgetExceeded):
            meter.require("big", 200)

    def test_require_accounts_for_replacement(self):
        meter = MemoryMeter(budget_bytes=100)
        meter.charge("s", 90)
        meter.require("s", 95)  # replacement frees the old 90 first

    def test_invalid_budget(self):
        with pytest.raises(InvalidParameterError):
            MemoryMeter(budget_bytes=0)

    def test_unlimited_budget(self):
        meter = MemoryMeter()
        meter.charge("huge", 10**15)
        assert meter.peak_bytes == 10**15

    def test_exception_is_memory_error(self):
        with pytest.raises(MemoryError):
            MemoryMeter(budget_bytes=1).charge("x", 2)


class TestPhaseBreakdown:
    def test_phase_peak(self):
        meter = MemoryMeter()
        meter.charge("precompute/U", 100)
        meter.charge("precompute/Z", 50)
        meter.charge("query/S", 30)
        assert meter.phase_peak_bytes("precompute") == 150
        assert meter.phase_peak_bytes("query") == 30
        assert meter.phase_peak_bytes("precompute/") == 150  # trailing slash ok

    def test_phase_peak_uses_high_water(self):
        meter = MemoryMeter()
        meter.charge("query/S", 100)
        meter.charge("query/S", 10)
        assert meter.phase_peak_bytes("query") == 100

    def test_unknown_phase_zero(self):
        assert MemoryMeter().phase_peak_bytes("nothing") == 0
