"""Unit tests for float32 factor storage."""

import numpy as np
import pytest

from repro.core.config import CSRPlusConfig
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.generators import chung_lu


@pytest.fixture(scope="module")
def graph():
    return chung_lu(200, 1000, seed=63)


class TestFloat32Index:
    def test_results_close_to_float64(self, graph):
        queries = [0, 50, 199]
        full = CSRPlusIndex(graph, rank=10).query(queries)
        half = CSRPlusIndex(graph, rank=10, dtype="float32").query(queries)
        np.testing.assert_allclose(half, full, atol=1e-4)

    def test_factor_dtype_and_memory_halved(self, graph):
        full = CSRPlusIndex(graph, rank=10).prepare()
        half = CSRPlusIndex(graph, rank=10, dtype="float32").prepare()
        u32, _, _, z32 = half.factors
        assert u32.dtype == np.float32
        assert z32.dtype == np.float32
        live_full = full.memory.live_breakdown()
        live_half = half.memory.live_breakdown()
        assert live_half["precompute/U"] * 2 == live_full["precompute/U"]
        assert live_half["precompute/Z"] * 2 == live_full["precompute/Z"]

    def test_query_result_dtype(self, graph):
        index = CSRPlusIndex(graph, rank=5, dtype="float32").prepare()
        assert index.query([0]).dtype == np.float32

    def test_top_k_agrees_between_dtypes(self, graph):
        full = CSRPlusIndex(graph, rank=10).prepare()
        half = CSRPlusIndex(graph, rank=10, dtype="float32").prepare()
        # head of the ranking survives the precision drop
        full_top = set(full.top_k(7, 5).tolist())
        half_top = set(half.top_k(7, 10).tolist())
        assert full_top <= half_top

    def test_invalid_dtype_rejected(self, graph):
        with pytest.raises(InvalidParameterError):
            CSRPlusConfig(dtype="float16")

    def test_save_load_preserves_dtype(self, graph, tmp_path):
        index = CSRPlusIndex(graph, rank=5, dtype="float32").prepare()
        path = tmp_path / "half.npz"
        index.save(path)
        loaded = CSRPlusIndex.load(path, graph)
        assert loaded.factors[0].dtype == np.float32
