"""Unit tests for the functional one-shot API."""

import numpy as np
import pytest

from repro.core.config import CSRPlusConfig
from repro.core.csr_plus import (
    cosimrank_all_pairs,
    cosimrank_multi_source,
    cosimrank_single_pair,
    cosimrank_single_source,
    cosimrank_top_k,
)
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import chung_lu


@pytest.fixture(scope="module")
def graph():
    return chung_lu(80, 400, seed=3)


class TestFunctionalAPI:
    def test_multi_source_matches_index(self, graph):
        via_fn = cosimrank_multi_source(graph, [1, 2], rank=6)
        via_index = CSRPlusIndex(graph, rank=6).query([1, 2])
        np.testing.assert_array_equal(via_fn, via_index)

    def test_single_source(self, graph):
        column = cosimrank_single_source(graph, 5, rank=6)
        assert column.shape == (80,)
        assert column[5] >= 0.9  # diagonal term

    def test_single_pair_symmetry(self, graph):
        ab = cosimrank_single_pair(graph, 3, 11, rank=10)
        ba = cosimrank_single_pair(graph, 11, 3, rank=10)
        assert ab == pytest.approx(ba, abs=1e-9)

    def test_all_pairs_shape(self, graph):
        matrix = cosimrank_all_pairs(graph, rank=4)
        assert matrix.shape == (80, 80)

    def test_top_k(self, graph):
        top = cosimrank_top_k(graph, 7, 5, rank=6)
        assert len(top) == 5
        assert 7 not in top

    def test_config_object_accepted(self, graph):
        config = CSRPlusConfig(rank=4, damping=0.7)
        block = cosimrank_multi_source(graph, [0], config)
        assert block.shape == (80, 1)

    def test_override_beats_config(self, graph):
        config = CSRPlusConfig(rank=4)
        a = cosimrank_multi_source(graph, [0], config, rank=12)
        b = cosimrank_multi_source(graph, [0], rank=12)
        np.testing.assert_array_equal(a, b)
