"""Unit tests for the iteration-count helpers."""

import pytest

from repro.core.iterations import (
    baseline_iterations_for_rank,
    fixed_point_iterations,
    squaring_iterations,
    truncation_error_bound,
)


class TestCounts:
    def test_squaring_matches_paper_formula(self):
        # max(0, floor(log2(log_0.6 1e-5)) + 1) = 5
        assert squaring_iterations(0.6, 1e-5) == 5

    def test_loose_epsilon_zero_iterations(self):
        assert squaring_iterations(0.6, 0.9) == 0

    def test_fixed_point_geometric(self):
        k = fixed_point_iterations(0.8, 1e-4)
        assert 0.8**k < 1e-4 <= 0.8 ** (k - 1)

    def test_baseline_fairness_rule(self):
        assert baseline_iterations_for_rank(5) == 5
        assert baseline_iterations_for_rank(0) == 1  # floor at 1


class TestTruncationBound:
    def test_bound_formula(self):
        assert truncation_error_bound(0.6, 4) == pytest.approx(0.6**5 / 0.4)

    def test_bound_decreases(self):
        assert truncation_error_bound(0.6, 10) < truncation_error_bound(0.6, 5)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            truncation_error_bound(0.6, -1)

    def test_bound_holds_empirically(self, small_er):
        """The tail bound really dominates the truncation error."""
        import numpy as np

        from repro.graphs.transition import transition_matrix

        q_dense = transition_matrix(small_er).toarray()
        n = small_er.num_nodes
        full = np.eye(n)
        for _ in range(200):
            full = 0.6 * q_dense.T @ full @ q_dense + np.eye(n)
        truncated = np.eye(n)
        for _ in range(6):
            truncated = 0.6 * q_dense.T @ truncated @ q_dense + np.eye(n)
        observed = np.max(np.abs(full - truncated))
        assert observed <= truncation_error_bound(0.6, 6) + 1e-12
