"""Theorem 3.7's memory accounting, checked byte for byte.

The meter is deterministic, so the O(rn) claim can be verified against
closed-form predictions of every factor's size — not just trends.
"""

import numpy as np
import pytest

from repro.core.index import CSRPlusIndex
from repro.core.memory import sparse_nbytes
from repro.graphs.generators import chung_lu, erdos_renyi


@pytest.fixture(scope="module")
def prepared():
    graph = erdos_renyi(500, 2500, seed=81)
    index = CSRPlusIndex(graph, rank=7).prepare()
    return graph, index


class TestFactorSizes:
    def test_u_and_z_are_8nr_bytes(self, prepared):
        graph, index = prepared
        n, r = graph.num_nodes, 7
        live = index.memory.live_breakdown()
        assert live["precompute/U"] == 8 * n * r
        assert live["precompute/Z"] == 8 * n * r

    def test_subspace_factors_are_r_squared(self, prepared):
        _, index = prepared
        live = index.memory.live_breakdown()
        assert live["precompute/H"] == 8 * 7 * 7
        assert live["precompute/P"] == 8 * 7 * 7
        assert live["precompute/Sigma"] == 8 * 7

    def test_q_charged_at_sparse_size(self, prepared):
        _, index = prepared
        live = index.memory.live_breakdown()
        assert live["precompute/Q"] == sparse_nbytes(index.transition())

    def test_v_not_retained(self, prepared):
        _, index = prepared
        assert "precompute/V" not in index.memory.live_breakdown()

    def test_query_block_is_8nq_bytes(self, prepared):
        graph, index = prepared
        index.query(list(range(13)))
        live = index.memory.live_breakdown()
        assert live["query/S"] == 8 * graph.num_nodes * 13

    def test_float32_query_preflight_uses_itemsize(self):
        """Regression: the query/S pre-flight check must use the index
        dtype's itemsize, not a hardcoded 8 bytes — a float32 index
        under a budget sized for its real 4-byte blocks was spuriously
        shed with MemoryBudgetExceeded."""
        graph = erdos_renyi(300, 1500, seed=83)
        index = CSRPlusIndex(graph, rank=5, dtype="float32").prepare()
        num_queries = 13
        block_bytes = 4 * graph.num_nodes * num_queries
        # budget admits the float32 block but not a float64-sized one
        index.memory.budget_bytes = (
            index.memory.current_bytes + block_bytes + 100
        )
        block = index.query(list(range(num_queries)))
        assert block.dtype == np.float32
        live = index.memory.live_breakdown()
        assert live["query/S"] == block_bytes


class TestScalingLaws:
    def test_peak_memory_linear_in_rank(self):
        graph = chung_lu(400, 2000, seed=82)
        peaks = {}
        for rank in (5, 10, 20):
            index = CSRPlusIndex(graph, rank=rank).prepare()
            peaks[rank] = index.memory.peak_bytes
        # difference the rank-independent Q cost away: the increments
        # between consecutive rank doublings must themselves double
        growth = (peaks[20] - peaks[10]) / (peaks[10] - peaks[5])
        assert growth == pytest.approx(2.0, rel=0.35)

    def test_peak_memory_linear_in_n(self):
        peaks = []
        for n in (300, 600, 1200):
            graph = erdos_renyi(n, 5 * n, seed=83)
            index = CSRPlusIndex(graph, rank=6).prepare()
            peaks.append(index.memory.peak_bytes)
        ratio1 = peaks[1] / peaks[0]
        ratio2 = peaks[2] / peaks[1]
        assert ratio1 == pytest.approx(2.0, rel=0.3)
        assert ratio2 == pytest.approx(2.0, rel=0.3)
