"""Unit tests for the Wikipedians-categorisation application."""

import numpy as np
import pytest

from repro.applications.categorisation import categorise
from repro.baselines.exact import ExactCoSimRank
from repro.datasets.toy import FIGURE1_LABELS, figure1_graph, figure1_node_ids
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import chung_lu


class TestFigure1Scenario:
    def test_seed_nodes_keep_labels(self):
        graph = figure1_graph()
        ids = figure1_node_ids()
        seeds = {"law": [ids["b"], ids["d"]], "art": [ids["a"]]}
        result = categorise(graph, seeds, rank=4)
        assert result.assignments[ids["b"]] == "law"
        assert result.assignments[ids["d"]] == "law"
        assert result.assignments[ids["a"]] == "art"

    def test_e_is_law_like(self):
        """Node e shares in-structure with b and d (Example 1.1)."""
        graph = figure1_graph()
        ids = figure1_node_ids()
        seeds = {"law": [ids["b"], ids["d"]], "art": [ids["a"]]}
        result = categorise(graph, seeds, rank=4)
        assert result.assignments[ids["e"]] == "law"

    def test_scores_match_engine_sums(self):
        graph = figure1_graph()
        ids = figure1_node_ids()
        seeds = {"law": [ids["b"], ids["d"]]}
        result = categorise(graph, seeds, rank=4)
        exact = ExactCoSimRank(graph).query([ids["b"], ids["d"]])
        np.testing.assert_allclose(
            result.scores["law"], exact.sum(axis=1), atol=1e-6
        )


class TestPlantedCommunities:
    def test_recovery_above_ninety_percent(self):
        rng = np.random.default_rng(5)
        size, communities = 100, 3
        n = size * communities
        edges = []
        for k in range(communities):
            base = k * size
            for _ in range(size * 6):
                s, t = rng.integers(0, size, size=2)
                if s != t:
                    edges.append((base + int(s), base + int(t)))
        graph = DiGraph(n, edges)
        seeds = {f"c{k}": [k * size, k * size + 1] for k in range(communities)}
        result = categorise(graph, seeds, rank=12)
        correct = sum(
            1
            for node in range(n)
            if result.assignments[node] == f"c{node // size}"
        )
        assert correct / n > 0.9

    def test_top_nodes(self):
        graph = chung_lu(60, 300, seed=18)
        result = categorise(graph, {"x": [0, 1]}, rank=8)
        top = result.top_nodes("x", 5)
        assert len(top) == 5
        scores = result.scores["x"]
        assert scores[top[0]] >= scores[top[-1]]


class TestValidation:
    def test_empty_seeds(self):
        with pytest.raises(InvalidParameterError):
            categorise(figure1_graph(), {})

    def test_empty_category(self):
        with pytest.raises(InvalidParameterError):
            categorise(figure1_graph(), {"law": []})

    def test_isolated_nodes_unassigned(self):
        graph = DiGraph(4, [(0, 1)])  # nodes 2, 3 isolated
        result = categorise(graph, {"only": [1]}, rank=2)
        assert result.assignments[2] == ""
        assert result.assignments[3] == ""
