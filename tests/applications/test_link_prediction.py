"""Unit tests for the link-prediction application."""

import numpy as np
import pytest

from repro.applications.link_prediction import (
    evaluate_link_prediction,
    sample_negative_pairs,
    score_pairs,
    split_edges,
)
from repro.core.index import CSRPlusIndex
from repro.errors import InvalidParameterError
from repro.graphs.digraph import DiGraph
from repro.graphs.generators import complete, preferential_attachment


@pytest.fixture(scope="module")
def social_graph():
    return preferential_attachment(400, 5, seed=6)


class TestSplit:
    def test_split_sizes(self, social_graph):
        training, held_out = split_edges(social_graph, 0.25, seed=1)
        assert len(held_out) == round(social_graph.num_edges * 0.25)
        assert training.num_edges == social_graph.num_edges - len(held_out)

    def test_held_out_edges_removed(self, social_graph):
        training, held_out = split_edges(social_graph, 0.2, seed=2)
        for s, t in held_out[:20]:
            assert not training.has_edge(s, t)

    def test_deterministic(self, social_graph):
        _, a = split_edges(social_graph, 0.2, seed=3)
        _, b = split_edges(social_graph, 0.2, seed=3)
        assert a == b

    def test_invalid_fraction(self, social_graph):
        with pytest.raises(InvalidParameterError):
            split_edges(social_graph, 1.5)

    def test_tiny_graph_rejected(self):
        with pytest.raises(InvalidParameterError):
            split_edges(DiGraph(2, [(0, 1)]), 0.5)


class TestNegativeSampling:
    def test_no_existing_edges_sampled(self, social_graph):
        negatives = sample_negative_pairs(social_graph, 50, seed=4)
        assert len(negatives) == 50
        for s, t in negatives:
            assert not social_graph.has_edge(s, t)
            assert s != t

    def test_dense_graph_raises(self):
        with pytest.raises(InvalidParameterError):
            sample_negative_pairs(complete(3), 100, seed=5)


class TestScoring:
    def test_direct_mode_matches_engine(self, social_graph):
        engine = CSRPlusIndex(social_graph, rank=8).prepare()
        pairs = [(0, 5), (3, 7)]
        scores = score_pairs(engine, pairs, mode="direct")
        assert scores[0] == pytest.approx(engine.single_pair(0, 5), abs=1e-12)

    def test_inlink_mode_positive_for_attached_pairs(self, social_graph):
        engine = CSRPlusIndex(social_graph, rank=16).prepare()
        s, t = next(iter(social_graph.edges()))
        scores = score_pairs(engine, [(s, t)], mode="inlink")
        assert scores.shape == (1,)

    def test_empty_pairs_rejected(self, social_graph):
        engine = CSRPlusIndex(social_graph, rank=4).prepare()
        with pytest.raises(InvalidParameterError):
            score_pairs(engine, [])

    def test_bad_mode(self, social_graph):
        engine = CSRPlusIndex(social_graph, rank=4).prepare()
        with pytest.raises(InvalidParameterError):
            score_pairs(engine, [(0, 1)], mode="psychic")

    def test_inlink_no_neighbors_scores_zero(self):
        graph = DiGraph(4, [(0, 1), (1, 2)])
        engine = CSRPlusIndex(graph, rank=2).prepare()
        scores = score_pairs(engine, [(0, 3)], mode="inlink")  # 3 has no in-edges
        assert scores[0] == 0.0


class TestEndToEnd:
    def test_auc_beats_random(self, social_graph):
        report = evaluate_link_prediction(
            social_graph, holdout_fraction=0.2, rank=24, seed=7
        )
        assert report.auc > 0.55
        assert report.num_positives == report.num_negatives

    def test_report_fields(self, social_graph):
        report = evaluate_link_prediction(social_graph, rank=8, seed=8)
        assert np.isfinite(report.mean_positive_score)
        assert np.isfinite(report.mean_negative_score)
