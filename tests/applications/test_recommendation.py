"""Unit tests for the item-recommendation application."""

import pytest

from repro.applications.recommendation import Recommender
from repro.errors import InvalidParameterError, QueryError

# Two taste clusters: users u1/u2 like sci-fi, u3/u4 like romance;
# u5 bridges weakly.
INTERACTIONS = [
    ("u1", "dune"), ("u1", "foundation"), ("u1", "hyperion"),
    ("u2", "dune"), ("u2", "foundation"), ("u2", "neuromancer"),
    ("u3", "pride"), ("u3", "emma"), ("u3", "persuasion"),
    ("u4", "pride"), ("u4", "emma"), ("u4", "jane-eyre"),
    ("u5", "dune"), ("u5", "pride"),
]


@pytest.fixture(scope="module")
def recommender():
    return Recommender(INTERACTIONS, rank=8, damping=0.8)


class TestSimilarItems:
    def test_within_cluster_beats_cross_cluster(self, recommender):
        ranked = [item for item, _ in recommender.similar_items("dune", k=8)]
        assert ranked.index("foundation") < ranked.index("emma")

    def test_self_excluded(self, recommender):
        assert all(i != "dune" for i, _ in recommender.similar_items("dune", k=8))

    def test_scores_descending(self, recommender):
        scores = [s for _, s in recommender.similar_items("pride", k=6)]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_item(self, recommender):
        with pytest.raises(QueryError):
            recommender.similar_items("moby-dick")


class TestRecommendForUser:
    def test_unseen_items_only(self, recommender):
        recs = [item for item, _ in recommender.recommend_for_user("u1", k=5)]
        assert "dune" not in recs
        assert "foundation" not in recs
        assert "hyperion" not in recs

    def test_cluster_affinity(self, recommender):
        recs = [item for item, _ in recommender.recommend_for_user("u1", k=2)]
        # u1's taste cluster: neuromancer (via u2) should lead romance titles
        assert "neuromancer" in recs

    def test_unknown_user(self, recommender):
        with pytest.raises(QueryError):
            recommender.recommend_for_user("u99")


class TestWeightedInteractions:
    def test_strengths_shift_ranking(self):
        base = [
            ("a", "x", 1.0), ("a", "y", 1.0),
            ("b", "x", 1.0), ("b", "z", 1.0),
            ("c", "y", 1.0), ("c", "z", 1.0),
        ]
        # heavily tie user a to x: items y (shares a) should gain
        skewed = [("a", "x", 10.0) if r[:2] == ("a", "x") else r for r in base]
        plain = Recommender(base, rank=6)
        heavy = Recommender(skewed, rank=6)
        plain_sim = dict((i, s) for i, s in plain.similar_items("x", k=2))
        heavy_sim = dict((i, s) for i, s in heavy.similar_items("x", k=2))
        assert set(plain_sim) == {"y", "z"}
        # weighting changes the numbers
        assert plain_sim != heavy_sim

    def test_counts(self, recommender):
        assert recommender.num_users == 5
        assert recommender.num_items == 8

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            Recommender([])

    def test_malformed_record(self):
        with pytest.raises(InvalidParameterError):
            Recommender([("u", "i", 1.0, "extra")])
