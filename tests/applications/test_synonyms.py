"""Unit tests for the synonym-expansion application."""

import pytest

from repro.applications.synonyms import SynonymExpander
from repro.errors import InvalidParameterError, QueryError

EDGES = [
    ("car", "road"), ("car", "wheel"), ("car", "engine"),
    ("auto", "road"), ("auto", "wheel"), ("auto", "engine"),
    ("truck", "road"), ("truck", "cargo"),
    ("doctor", "hospital"), ("doctor", "patient"),
    ("physician", "hospital"), ("physician", "patient"),
]


@pytest.fixture(scope="module")
def expander():
    return SynonymExpander(EDGES, rank=8, damping=0.8)


class TestExpansion:
    def test_synonym_ranks_first(self, expander):
        top_word, score = expander.expand("car", k=1)[0]
        assert top_word == "auto"
        assert score > 0

    def test_cross_domain_similarity_lower(self, expander):
        same = expander.similarity("doctor", "physician")
        cross = expander.similarity("car", "physician")
        assert same > cross

    def test_expand_returns_descending_scores(self, expander):
        results = expander.expand("car", k=5)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_expand_excludes_word_itself(self, expander):
        assert all(w != "car" for w, _ in expander.expand("car", k=10))

    def test_expand_set_excludes_seeds(self, expander):
        results = expander.expand_set(["car", "auto"], k=5)
        words = [w for w, _ in results]
        assert "car" not in words
        assert "auto" not in words

    def test_expand_set_needs_seed(self, expander):
        with pytest.raises(InvalidParameterError):
            expander.expand_set([])

    def test_unknown_word(self, expander):
        with pytest.raises(QueryError):
            expander.expand("zeppelin")

    def test_vocabulary_complete(self, expander):
        assert set(expander.vocabulary) == {
            "car", "road", "wheel", "engine", "auto", "truck", "cargo",
            "doctor", "hospital", "patient", "physician",
        }


class TestOrientation:
    def test_as_is_orientation_changes_semantics(self):
        default = SynonymExpander(EDGES, rank=8)
        as_is = SynonymExpander(EDGES, rank=8, orientation="as-is")
        # with as-is edges, "car" has no in-neighbours -> only self-similar
        assert as_is.similarity("car", "auto") == pytest.approx(0.0, abs=1e-6)
        assert default.similarity("car", "auto") > 0.1

    def test_invalid_orientation(self):
        with pytest.raises(InvalidParameterError):
            SynonymExpander(EDGES, orientation="backwards")

    def test_empty_edges(self):
        with pytest.raises(InvalidParameterError):
            SynonymExpander([])
