"""The §3.2 stages on the paper's own worked example.

Running all five cumulative optimisation stages on the Figure-1 graph
and comparing against Example 3.6's printed numbers ties the whole
derivation — Eqs. (5)-(6b) through Theorems 3.1-3.5 — to the paper's
arithmetic in one place.
"""

import numpy as np
import pytest

from repro.datasets.toy import (
    example_3_6_expected,
    example_3_6_queries,
    figure1_graph,
)
from repro.experiments.stages import STAGE_COUNT, run_stage


@pytest.mark.parametrize("stage", range(STAGE_COUNT))
def test_every_stage_reproduces_example_3_6(stage):
    graph = figure1_graph()
    block = run_stage(
        stage, graph, example_3_6_queries(), rank=3, damping=0.6
    )
    np.testing.assert_allclose(block, example_3_6_expected(), atol=5e-3)


def test_stage0_equals_closed_form_eq5():
    """Li et al.'s Eq. (5): vec(S) = (I - c(Q kron Q)^T)^{-1} vec(I_n),
    the un-approximated closed form, matches stage 0 at full rank."""
    from repro.graphs.transition import transition_matrix
    from repro.linalg.kronecker import unvec, vec_identity

    graph = figure1_graph()
    n = graph.num_nodes
    q_dense = transition_matrix(graph).toarray()
    system = np.eye(n * n) - 0.6 * np.kron(q_dense, q_dense).T
    s_closed = unvec(np.linalg.solve(system, vec_identity(n)), n, n)

    block = run_stage(0, graph, np.arange(n), rank=4, damping=0.6)  # rank(Q)=4
    np.testing.assert_allclose(block, s_closed, atol=1e-8)
