"""Smoke tests for the figure runners at tiny scale.

These verify the structure and the paper's qualitative *shapes* —
orderings and growth trends — not absolute times, so they stay robust
on slow CI machines.
"""

import pytest

from repro.experiments import figures


@pytest.fixture(scope="module")
def fig2_result():
    return figures.fig2(tier="tiny", q_size=100, time_budget=60.0)


@pytest.fixture(scope="module")
def fig3_result():
    return figures.fig3(tier="tiny", q_sizes=(10, 30, 60))


@pytest.fixture(scope="module")
def rank_sweep_results():
    datasets = (("FB", "tiny"),)
    ranks = (3, 6, 12)
    return (
        figures.fig4(datasets=datasets, ranks=ranks, q_size=20, time_budget=60.0),
        figures.fig8(datasets=datasets, ranks=ranks, q_size=20, time_budget=60.0),
    )


@pytest.fixture(scope="module")
def qsize_sweep_results():
    datasets = (("FB", "tiny"),)
    q_sizes = (10, 40, 80)
    return (
        figures.fig5(datasets=datasets, q_sizes=q_sizes, time_budget=60.0),
        figures.fig9(datasets=datasets, q_sizes=q_sizes, time_budget=60.0),
    )


class TestFig2:
    def test_all_datasets_present(self, fig2_result):
        assert fig2_result.column("dataset") == ["FB", "P2P", "YT", "WT", "TW", "WB"]

    def test_csr_plus_always_completes(self, fig2_result):
        assert all(s is not None for s in fig2_result.column("CSR+_seconds"))

    def test_csr_plus_fastest_on_medium_and_large(self, fig2_result):
        """At tiny scale constant factors can favour rivals on FB/P2P;
        the paper's ordering must hold from the medium graphs up."""
        for row in fig2_result.rows:
            if row["dataset"] in ("FB", "P2P"):
                continue
            mine = row["CSR+_seconds"]
            for rival in ("CSR-RLS", "CSR-IT", "CSR-NI"):
                other = row.get(f"{rival}_seconds")
                if other is not None:
                    assert mine <= other * 1.5, (row["dataset"], rival)

    def test_render_smoke(self, fig2_result):
        text = fig2_result.render()
        assert "fig2" in text
        assert "CSR-NI" in text


class TestFig3:
    def test_preprocess_independent_of_q(self, fig3_result):
        by_dataset = {}
        for row in fig3_result.rows:
            by_dataset.setdefault(row["dataset"], []).append(
                row["preprocess_seconds"]
            )
        for values in by_dataset.values():
            assert len(set(values)) == 1  # prepared once, reused

    def test_query_time_grows_with_q(self, fig3_result):
        """On the largest dataset the query cost must track |Q|."""
        rows = [r for r in fig3_result.rows if r["dataset"] == "WB"]
        q_sizes = [r["|Q|"] for r in rows]
        times = [r["query_seconds"] for r in rows]
        assert q_sizes == sorted(q_sizes)
        # allow wall-clock noise; just require an upward overall trend
        assert times[-1] >= times[0] * 0.5


class TestRankSweep:
    def test_fig4_structure(self, rank_sweep_results):
        fig4, _ = rank_sweep_results
        assert [r["r"] for r in fig4.rows] == [3, 6, 12]

    def test_ni_slowest_at_high_rank(self, rank_sweep_results):
        fig4, _ = rank_sweep_results
        last = fig4.rows[-1]
        if last.get("CSR-NI_seconds") is not None:
            assert last["CSR-NI_seconds"] > last["CSR+_seconds"]

    def test_fig8_ni_memory_dominates(self, rank_sweep_results):
        _, fig8 = rank_sweep_results
        for row in fig8.rows:
            ni = row.get("CSR-NI_bytes")
            if ni is not None:
                assert ni > 10 * row["CSR+_bytes"]

    def test_fig8_ni_memory_grows_quartically(self, rank_sweep_results):
        _, fig8 = rank_sweep_results
        ni = [r.get("CSR-NI_bytes") for r in fig8.rows]
        if ni[0] is not None and ni[-1] is not None:
            # rank 3 -> 12 means r^2 factor 16 in the n^2 r^2 terms
            assert ni[-1] > 8 * ni[0]


class TestQSizeSweep:
    def test_fig5_rls_grows_with_q(self, qsize_sweep_results):
        fig5, _ = qsize_sweep_results
        rls = [r.get("CSR-RLS_seconds") for r in fig5.rows]
        if all(v is not None for v in rls):
            assert rls[-1] > rls[0] * 0.8  # upward trend, noise-tolerant

    def test_fig9_csr_plus_memory_linear_in_q(self, qsize_sweep_results):
        _, fig9 = qsize_sweep_results
        mine = [r["CSR+_bytes"] for r in fig9.rows]
        q_sizes = [r["|Q|"] for r in fig9.rows]
        # memory must grow with |Q| but stay well below quadratic
        assert mine[-1] > mine[0]
        assert mine[-1] < mine[0] * (q_sizes[-1] / q_sizes[0]) * 3


class TestFig7:
    def test_phase_memory_structure(self):
        result = figures.fig7(tier="tiny", q_sizes=(5, 20))
        assert {"preprocess_bytes", "query_bytes"} <= set(result.rows[0])
        for row in result.rows:
            assert row["preprocess_bytes"] > 0
            assert row["query_bytes"] > 0

    def test_query_memory_scales_linearly(self):
        result = figures.fig7(tier="tiny", q_sizes=(5, 20))
        fb_rows = [r for r in result.rows if r["dataset"] == "FB"]
        assert fb_rows[1]["query_bytes"] == 4 * fb_rows[0]["query_bytes"]
