"""Unit tests for the text report renderer."""

from repro.experiments.report import ExperimentResult, render_table


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table(
            ["name", "value"],
            [{"name": "alpha", "value": 1}, {"name": "b", "value": 22}],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-----" in lines[1]
        assert "alpha" in lines[2]
        # aligned: both value columns start at the same offset
        assert lines[2].index("1") == lines[3].index("2")

    def test_missing_cells_render_empty(self):
        text = render_table(["a", "b"], [{"a": "x"}])
        assert "x" in text

    def test_none_renders_empty(self):
        text = render_table(["a"], [{"a": None}])
        assert text.splitlines()[2].strip() == ""

    def test_empty_rows(self):
        text = render_table(["only"], [])
        assert text.splitlines()[0] == "only"


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            exp_id="figX",
            title="A test figure",
            columns=["k", "v"],
            rows=[{"k": "a", "v": 1, "v_raw": 1.0}, {"k": "b", "v": 2}],
            notes=["be careful"],
            parameters={"r": 5},
        )

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "figX" in text
        assert "A test figure" in text
        assert "r=5" in text
        assert "note: be careful" in text

    def test_column_access(self):
        result = self._result()
        assert result.column("v") == [1, 2]
        assert result.column("v_raw") == [1.0, None]
