"""Unit tests for the measurement harness."""

import numpy as np
import pytest

from repro.experiments.harness import Measurement, format_bytes, format_seconds, measure
from repro.graphs.generators import chung_lu, erdos_renyi


class TestMeasure:
    def test_ok_run(self, small_er):
        record = measure(
            "CSR+", small_er, np.array([0, 1, 2]), memory_budget_bytes=None,
            time_budget_seconds=None,
        )
        assert record.status == "ok"
        assert record.completed
        assert record.prepare_seconds >= 0
        assert record.query_seconds >= 0
        assert record.total_seconds == record.prepare_seconds + record.query_seconds
        assert record.peak_bytes > 0
        assert record.prepare_bytes > 0
        assert record.query_bytes > 0

    def test_memory_status(self):
        graph = chung_lu(500, 2500, seed=20)
        record = measure(
            "CSR-NI", graph, np.array([0]), memory_budget_bytes=1_000_000,
            time_budget_seconds=None,
        )
        assert record.status == "memory"
        assert not record.completed
        assert "budget" in record.error

    def test_timeout_status(self):
        graph = chung_lu(800, 4000, seed=21)
        record = measure(
            "CSR-RLS", graph, np.arange(20), memory_budget_bytes=None,
            time_budget_seconds=1e-9,
        )
        assert record.status == "timeout"
        assert "time budget" in record.error

    def test_keep_result(self, small_er):
        record = measure(
            "CSR+", small_er, np.array([0, 1]), keep_result=True,
            memory_budget_bytes=None, time_budget_seconds=None,
        )
        assert record.result is not None
        assert record.result.shape == (small_er.num_nodes, 2)

    def test_result_dropped_by_default(self, small_er):
        record = measure(
            "CSR+", small_er, np.array([0]), memory_budget_bytes=None,
            time_budget_seconds=None,
        )
        assert record.result is None


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(1_500) == "1.5 KB"
        assert format_bytes(2_000_000) == "2.0 MB"
        assert format_bytes(3_400_000_000) == "3.4 GB"

    def test_format_seconds(self):
        assert format_seconds(5e-7) == "1 us" or "us" in format_seconds(5e-7)
        assert format_seconds(0.0021) == "2.1 ms"
        assert format_seconds(1.5) == "1.50 s"
        assert format_seconds(300) == "5.0 min"
