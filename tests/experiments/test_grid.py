"""Unit tests for the generic sweep utility."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.grid import sweep
from repro.graphs.generators import chung_lu, erdos_renyi


@pytest.fixture(scope="module")
def graphs():
    return {
        "er": erdos_renyi(80, 320, seed=73),
        "cl": chung_lu(100, 500, seed=74),
    }


class TestSweep:
    def test_full_grid_row_count(self, graphs):
        result = sweep(
            graphs,
            engines=("CSR+", "CSR-RLS"),
            ranks=(3, 6),
            q_sizes=(10, 20),
            memory_budget_bytes=None,
            time_budget_seconds=None,
        )
        assert len(result.rows) == 2 * 2 * 2 * 2

    def test_raw_and_formatted_columns(self, graphs):
        result = sweep(graphs, q_sizes=(5,), memory_budget_bytes=None,
                       time_budget_seconds=None)
        row = result.rows[0]
        assert row["status"] == "ok"
        assert row["seconds"] is not None
        assert row["bytes"] is not None
        assert "s" in row["time"] or "ms" in row["time"] or "us" in row["time"]

    def test_budget_failures_recorded(self, graphs):
        result = sweep(
            graphs,
            engines=("CSR-NI",),
            q_sizes=(5,),
            memory_budget_bytes=100_000,
        )
        assert all(row["status"] == "memory" for row in result.rows)
        assert all(row["seconds"] is None for row in result.rows)

    def test_q_clipped_to_graph_size(self, graphs):
        result = sweep(
            {"er": graphs["er"]}, q_sizes=(10_000,),
            memory_budget_bytes=None, time_budget_seconds=None,
        )
        assert result.rows[0]["|Q|"] == 80

    def test_validation(self, graphs):
        with pytest.raises(InvalidParameterError):
            sweep({}, engines=("CSR+",))
        with pytest.raises(InvalidParameterError):
            sweep(graphs, engines=())

    def test_render(self, graphs):
        result = sweep(graphs, q_sizes=(5,), memory_budget_bytes=None,
                       time_budget_seconds=None)
        text = result.render()
        assert "custom sweep" in text
        assert "er" in text
