"""Tests for the top-k-quality experiment and JSON serialisation."""

import pytest

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.experiments.topk_quality import topk_quality


class TestTopKQuality:
    @pytest.fixture(scope="class")
    def result(self):
        return topk_quality(
            datasets=(("FB", "tiny"), ("YT", "tiny")),
            ranks=(5, 25, 100),
            k=10,
            num_queries=10,
        )

    def test_grid_shape(self, result):
        assert len(result.rows) == 6
        assert [r["r"] for r in result.rows if r["dataset"] == "FB"] == [5, 25, 100]

    def test_precision_improves_with_rank(self, result):
        for key in ("FB", "YT"):
            values = [
                row["precision_value"]
                for row in result.rows
                if row["dataset"] == key
            ]
            assert values[-1] > values[0]
            assert values[-1] > 0.6

    def test_registered_in_runner(self):
        result = run_experiment(
            "topk-quality",
            datasets=(("P2P", "tiny"),),
            ranks=(5, 50),
            num_queries=5,
        )
        assert result.exp_id == "topk-quality"

    def test_oversized_ranks_skipped(self):
        result = topk_quality(
            datasets=(("FB", "tiny"),), ranks=(5, 10**6), num_queries=5
        )
        assert [row["r"] for row in result.rows] == [5]


class TestJsonRoundTrip:
    def _result(self):
        return ExperimentResult(
            exp_id="x",
            title="t",
            columns=["a"],
            rows=[{"a": 1, "b": None}, {"a": "text"}],
            notes=["n1"],
            parameters={"p": 3},
        )

    def test_round_trip_equality(self):
        original = self._result()
        restored = ExperimentResult.from_json(original.to_json())
        assert restored.exp_id == original.exp_id
        assert restored.rows == original.rows
        assert restored.parameters == original.parameters
        assert restored.notes == original.notes

    def test_file_round_trip(self, tmp_path):
        original = self._result()
        path = tmp_path / "result.json"
        original.save_json(path)
        restored = ExperimentResult.load_json(path)
        assert restored.rows == original.rows

    def test_non_json_values_stringified(self):
        import numpy as np

        result = ExperimentResult(
            exp_id="x", title="t", columns=["a"],
            rows=[{"a": np.float64(1.5)}],
        )
        text = result.to_json()
        assert "1.5" in text
