"""Smoke/shape tests for the table runners and the stage ablation."""

import numpy as np
import pytest

from repro.datasets.queries import sample_queries
from repro.datasets.registry import load_dataset
from repro.experiments.stages import STAGE_COUNT, ablation_stages, run_stage, stage_names
from repro.experiments.tables import tab1, tab3


class TestTab3:
    @pytest.fixture(scope="class")
    def result(self):
        return tab3(
            datasets=(("FB", "tiny"), ("P2P", "tiny")),
            ranks=(10, 25, 60),
            q_size=25,
        )

    def test_row_grid(self, result):
        datasets = {row["dataset"] for row in result.rows}
        assert datasets == {"FB", "P2P"}
        fb_ranks = [row["r"] for row in result.rows if row["dataset"] == "FB"]
        assert fb_ranks == [10, 25, 60]

    def test_avgdiff_decreases_with_rank(self, result):
        for key in ("FB", "P2P"):
            values = [
                row["avg_diff_value"] for row in result.rows if row["dataset"] == key
            ]
            assert values[-1] <= values[0]

    def test_losslessness_wherever_ni_fits(self, result):
        checked = [row for row in result.rows if row["lossless"] != "n/a"]
        assert checked, "expected CSR-NI to fit at least once at tiny scale"
        assert all(row["lossless"] == "yes" for row in checked)


class TestTab1:
    @pytest.fixture(scope="class")
    def result(self):
        return tab1(n_grid=(200, 400, 800), r_grid=(4, 8, 16), q_size=20, repeats=2)

    def test_all_algorithms_reported(self, result):
        assert [row["algorithm"] for row in result.rows] == [
            "CSR+",
            "CSR-NI",
            "CSR-IT",
            "CSR-RLS",
        ]

    def test_ni_r_exponent_far_above_csr_plus(self, result):
        by_name = {row["algorithm"]: row for row in result.rows}
        assert (
            by_name["CSR-NI"]["r_exponent_value"]
            > by_name["CSR+"]["r_exponent_value"] + 1.0
        )

    def test_ni_n_exponent_superlinear(self, result):
        by_name = {row["algorithm"]: row for row in result.rows}
        assert by_name["CSR-NI"]["n_exponent_value"] > 1.3


class TestStages:
    def test_stage_names_count(self):
        assert len(stage_names()) == STAGE_COUNT == 5

    def test_all_stages_identical_output(self):
        graph = load_dataset("P2P", "tiny")
        queries = sample_queries(graph, 10, seed=7)
        blocks = [
            run_stage(stage, graph, queries, rank=5) for stage in range(STAGE_COUNT)
        ]
        for stage in range(1, STAGE_COUNT):
            np.testing.assert_allclose(
                blocks[stage], blocks[0], atol=1e-8, err_msg=f"stage {stage}"
            )

    def test_run_stage_validates(self):
        graph = load_dataset("P2P", "tiny")
        with pytest.raises(ValueError):
            run_stage(9, graph, np.array([0]))

    def test_ablation_result_drift_tiny(self):
        result = ablation_stages(dataset="FB", tier="tiny", rank=4, q_size=8)
        assert len(result.rows) == STAGE_COUNT
        assert all(row["drift_value"] < 1e-8 for row in result.rows)
