"""Unit tests for the analytic cost models."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.complexity import (
    cost_models,
    csr_ni_cost,
    csr_plus_cost,
    feasible_under_budget,
)


class TestModelShapes:
    def test_csr_plus_linear_in_n(self):
        base = csr_plus_cost(10_000, 50_000, 5, 100)
        doubled = csr_plus_cost(20_000, 100_000, 5, 100)
        assert doubled / base == pytest.approx(2.0, rel=0.05)

    def test_csr_ni_quadratic_in_n(self):
        base = csr_ni_cost(1_000, 5_000, 5, 100)
        doubled = csr_ni_cost(2_000, 10_000, 5, 100)
        assert doubled / base == pytest.approx(4.0, rel=0.01)

    def test_csr_ni_quartic_in_r(self):
        base = csr_ni_cost(1_000, 5_000, 5, 100)
        doubled = csr_ni_cost(1_000, 5_000, 10, 100)
        assert doubled / base > 10

    def test_orderings_at_paper_defaults(self):
        """At any realistic size CSR+ predicts the cheapest run."""
        models = cost_models()
        for n in (10_000, 1_000_000):
            m, r, q = 5 * n, 5, 100
            mine = models["CSR+"].time(n, m, r, q)
            for name in ("CSR-NI", "CSR-IT", "CSR-RLS"):
                assert mine < models[name].time(n, m, r, q), name

    def test_memory_orderings(self):
        models = cost_models()
        n, m, r, q = 100_000, 500_000, 5, 100
        mine = models["CSR+"].memory(n, m, r, q)
        assert mine < models["CSR-NI"].memory(n, m, r, q) / 1_000
        assert mine < models["CSR-IT"].memory(n, m, r, q)


class TestFeasibility:
    def test_csr_ni_infeasible_at_paper_scale(self):
        """CSR-NI cannot hold YT (n=1.13M) even in 256 GB."""
        assert not feasible_under_budget(
            "CSR-NI", 1_134_890, 5_975_248, 5, 100, 256 * 10**9
        )

    def test_csr_plus_feasible_at_billion_edges(self):
        """CSR+ fits TW (1.47B edges) in the paper's 256 GB."""
        assert feasible_under_budget(
            "CSR+", 41_625_230, 1_468_365_182, 5, 100, 256 * 10**9
        )

    def test_unknown_algorithm(self):
        with pytest.raises(InvalidParameterError):
            feasible_under_budget("CSR-XX", 10, 10, 2, 1, 1000)

    def test_bad_budget(self):
        with pytest.raises(InvalidParameterError):
            feasible_under_budget("CSR+", 10, 10, 2, 1, 0)

    def test_bad_sizes(self):
        with pytest.raises(InvalidParameterError):
            cost_models()["CSR+"].time(0, 0, 1, 1)


class TestAgainstMeasurements:
    def test_model_ranks_engines_like_reality(self):
        """The predicted time ordering matches a real measurement."""
        from repro.datasets.queries import sample_queries
        from repro.experiments.harness import measure
        from repro.graphs.generators import erdos_renyi

        n, per_node, r, q = 800, 4, 5, 50
        graph = erdos_renyi(n, per_node * n, seed=95)
        queries = sample_queries(graph, q, seed=7)
        models = cost_models()
        measured = {}
        predicted = {}
        for name in ("CSR+", "CSR-NI"):
            record = measure(
                name, graph, queries, rank=r,
                memory_budget_bytes=None, time_budget_seconds=None,
            )
            measured[name] = record.total_seconds
            predicted[name] = models[name].time(n, per_node * n, r, q)
        assert (predicted["CSR+"] < predicted["CSR-NI"]) == (
            measured["CSR+"] < measured["CSR-NI"]
        )
