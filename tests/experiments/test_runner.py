"""Unit tests for experiment dispatch."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import EXPERIMENTS, list_experiments, run_experiment


class TestDispatch:
    def test_all_paper_artefacts_registered(self):
        ids = set(list_experiments())
        expected = {f"fig{i}" for i in range(2, 10)} | {"tab1", "tab3"}
        assert expected <= ids

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_kwargs_forwarded(self):
        result = run_experiment("ablation-stages", dataset="P2P", tier="tiny", q_size=5)
        assert result.parameters["dataset"] == "P2P"

    def test_registry_values_callable(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())
