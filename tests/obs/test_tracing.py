"""Unit tests for the span/tracer API."""

import json
import threading

import pytest

import repro.obs as obs
from repro.obs.tracing import NULL_SPAN, Tracer, render_tree_from_dict


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


class TestNesting:
    def test_same_thread_spans_nest_implicitly(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        roots = tracer.roots()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == ["inner"]

    def test_sequential_spans_are_siblings(self, tracer):
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (parent,) = tracer.roots()
        assert [child.name for child in parent.children] == ["a", "b"]

    def test_current_span(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_explicit_cross_thread_parent(self, tracer):
        with tracer.span("batch") as batch:
            def worker():
                with tracer.span("chunk", parent=batch):
                    pass

            thread = threading.Thread(target=worker, name="worker-0")
            thread.start()
            thread.join()
        (root,) = tracer.roots()
        assert [child.name for child in root.children] == ["chunk"]
        assert root.children[0].thread_name == "worker-0"

    def test_unparented_thread_span_becomes_root(self, tracer):
        def worker():
            with tracer.span("solo"):
                pass

        with tracer.span("main-root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert {root.name for root in tracer.roots()} == {"solo", "main-root"}


class TestTiming:
    def test_wall_and_cpu_populated(self, tracer):
        with tracer.span("work") as span:
            sum(range(50_000))
        assert span.wall_seconds > 0
        assert span.cpu_seconds > 0
        assert span.start_seconds >= 0

    def test_children_wall_bounded_by_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(10_000))
        (outer,) = tracer.roots()
        assert outer.children[0].wall_seconds <= outer.wall_seconds


class TestAttributes:
    def test_kwargs_and_set_attribute(self, tracer):
        with tracer.span("s", k=1) as span:
            span.set_attribute("extra", "yes")
        assert span.attributes == {"k": 1, "extra": "yes"}

    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (root,) = tracer.roots()
        assert root.attributes["error"] == "ValueError: nope"


class TestDisabledFlag:
    def test_disabled_returns_shared_null_span(self, tracer):
        with obs.instrumentation(False):
            span = tracer.span("x", attr=1)
        assert span is NULL_SPAN
        with span as entered:
            assert entered is NULL_SPAN
        assert span.wall_seconds == 0.0
        assert tracer.roots() == []

    def test_module_level_span_respects_flag(self):
        with obs.instrumentation(False):
            assert obs.span("x") is NULL_SPAN

    def test_null_span_as_explicit_parent_is_ignored(self, tracer):
        # flag flipped between batch start and worker: must not crash
        with tracer.span("child", parent=NULL_SPAN):
            pass
        assert [root.name for root in tracer.roots()] == ["child"]


class TestRetention:
    def test_max_roots_drops_oldest(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [root.name for root in tracer.roots()] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_reset(self, tracer):
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.dropped == 0


class TestExport:
    def _one_trace(self, tracer):
        with tracer.span("root", k="v"):
            with tracer.span("leaf"):
                pass

    def test_as_dict_shape(self, tracer):
        self._one_trace(tracer)
        dump = tracer.as_dict()
        assert dump["dropped"] == 0
        (root,) = dump["spans"]
        assert root["name"] == "root"
        assert root["attributes"] == {"k": "v"}
        assert root["children"][0]["name"] == "leaf"
        for key in ("thread", "start_seconds", "wall_seconds", "cpu_seconds"):
            assert key in root

    def test_json_round_trip_and_write(self, tracer, tmp_path):
        self._one_trace(tracer)
        path = tmp_path / "trace.json"
        tracer.write_json(path)
        dump = json.loads(path.read_text())
        assert dump["spans"][0]["children"][0]["name"] == "leaf"

    def test_render_tree(self, tracer):
        self._one_trace(tracer)
        rendered = tracer.render_tree()
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  leaf")
        assert "wall" in lines[0] and "cpu" in lines[0]
        assert "k=v" in lines[0]

    def test_render_tree_from_dict_reports_drops(self):
        rendered = render_tree_from_dict({"dropped": 2, "spans": []})
        assert "2 older root span(s) dropped" in rendered
