"""Unit tests for the sliding-window latency tracker."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs.latency import DEFAULT_PERCENTILES, LatencyWindow


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestConstruction:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            LatencyWindow(max_samples=0)
        with pytest.raises(InvalidParameterError):
            LatencyWindow(window_seconds=0.0)
        with pytest.raises(InvalidParameterError):
            LatencyWindow(window_seconds=-1.0)


class TestPercentiles:
    def test_empty_window_is_nan(self):
        window = LatencyWindow()
        assert math.isnan(window.percentile(50.0))
        assert all(math.isnan(v) for v in window.snapshot().values())

    def test_out_of_range_percentile_rejected(self):
        window = LatencyWindow()
        window.observe(0.1)
        with pytest.raises(InvalidParameterError):
            window.percentile(101.0)
        with pytest.raises(InvalidParameterError):
            window.percentile(-1.0)

    def test_matches_numpy_exactly(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(0.05, size=300)
        window = LatencyWindow(max_samples=1000)
        for value in values:
            window.observe(float(value))
        for p in DEFAULT_PERCENTILES:
            assert window.percentile(p) == pytest.approx(
                float(np.percentile(values, p)), rel=0, abs=0
            )

    def test_snapshot_keys(self):
        window = LatencyWindow()
        window.observe(0.2)
        assert set(window.snapshot()) == {"p50", "p95", "p99"}


class TestBounding:
    def test_ring_drops_oldest(self):
        window = LatencyWindow(max_samples=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value)
        assert len(window) == 3
        assert window.observed == 4
        # 1.0 fell off the ring: the minimum is now 2.0
        assert window.percentile(0.0) == pytest.approx(2.0)

    def test_time_window_expires_at_read(self):
        clock = FakeClock()
        window = LatencyWindow(window_seconds=10.0, clock=clock)
        window.observe(0.1)
        clock.now = 5.0
        window.observe(0.9)
        assert len(window) == 2
        clock.now = 12.0  # first sample (t=0) is now outside the window
        assert len(window) == 1
        assert window.percentile(50.0) == pytest.approx(0.9)

    def test_reset_clears_live_samples(self):
        window = LatencyWindow()
        window.observe(0.5)
        window.reset()
        assert len(window) == 0
        assert math.isnan(window.percentile(50.0))
        assert window.observed == 1  # lifetime count survives reset


class TestServiceIntegration:
    def test_service_latency_percentiles(self):
        import repro.obs as obs
        from repro.core.index import CSRPlusIndex
        from repro.graphs import ring
        from repro.serving import CoSimRankService

        previous = obs.set_enabled(True)
        try:
            service = CoSimRankService(
                CSRPlusIndex(ring(16), rank=4), max_workers=1
            )
            assert math.isnan(service.latency_percentiles()["p99"])
            for _ in range(5):
                service.serve_batch([[0, 3]])
            snap = service.latency_percentiles()
            assert snap["p50"] > 0.0
            assert snap["p50"] <= snap["p95"] <= snap["p99"]
            assert len(service.latency_window) == 5
            service.close()
        finally:
            obs.set_enabled(previous)

    def test_window_stays_empty_when_disabled(self):
        import repro.obs as obs
        from repro.core.index import CSRPlusIndex
        from repro.graphs import ring
        from repro.serving import CoSimRankService

        previous = obs.set_enabled(False)
        try:
            service = CoSimRankService(
                CSRPlusIndex(ring(16), rank=4), max_workers=1
            )
            service.serve_batch([[0]])
            # NULL_SPAN has no wall time; the window records nothing
            assert len(service.latency_window) == 0
            service.close()
        finally:
            obs.set_enabled(previous)
