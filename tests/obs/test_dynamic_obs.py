"""Observability of the live-graph path (docs/dynamic.md).

Three layers of instruments, each pinned against the shared scrape
validator in :mod:`tests.obs.prom` so renames and typos fail here:

* :class:`~repro.core.dynamic.DynamicCSRPlus` — the
  ``csrplus_dynamic_staleness`` gauge tracks the update log, every
  rebuild increments ``csrplus_dynamic_rebuilds_total`` and emits a
  ``dynamic.rebuild`` span;
* :meth:`~repro.serving.service.CoSimRankService.publish_index` — the
  ``csrplus_index_version`` gauge, swap-latency histogram, per-entry
  cache invalidation counters, and the ``index.swap`` span;
* :class:`~repro.serving.live.LiveIndexChain` — the
  ``csrplus_update_*`` counters summarising each applied batch.
"""

import numpy as np

from repro.core.dynamic import DynamicCSRPlus
from repro.core.index import CSRPlusIndex
from repro.graphs.generators import erdos_renyi
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serving import CoSimRankService, LiveIndexChain

from .prom import assert_known_families, assert_valid_prometheus


def _span_names(tracer, names=None):
    """All span names in the tracer, roots and children flattened."""
    names = [] if names is None else names

    def walk(span):
        names.append(span.name)
        for child in span.children:
            walk(child)

    for root in tracer.roots():
        walk(root)
    return names


def _find_span(tracer, name):
    def walk(span):
        if span.name == name:
            return span
        for child in span.children:
            found = walk(child)
            if found is not None:
                return found
        return None

    for root in tracer.roots():
        found = walk(root)
        if found is not None:
            return found
    return None


class TestDynamicEngineObs:
    def test_staleness_gauge_tracks_update_log(self):
        graph = erdos_renyi(30, 120, seed=5)
        metrics = MetricsRegistry()
        dyn = DynamicCSRPlus(graph, rank=4, policy="manual", metrics=metrics)
        gauge = metrics.gauge("csrplus_dynamic_staleness", "x")
        assert gauge.value == 0
        dyn.update_edges(added=[(0, 11)])
        dyn.update_edges(added=[(1, 12)], removed=[(0, 11)])
        assert gauge.value == 3  # three edge changes pending
        dyn.refresh()
        assert gauge.value == 0
        assert metrics.counter("csrplus_dynamic_rebuilds_total", "x").value == 1

    def test_rebuild_emits_span_with_attributes(self):
        graph = erdos_renyi(30, 120, seed=5)
        tracer = Tracer()
        dyn = DynamicCSRPlus(
            graph, rank=4, policy="manual",
            metrics=MetricsRegistry(), tracer=tracer,
        )
        dyn.update_edges(added=[(0, 11), (2, 13)])
        dyn.refresh()
        span = _find_span(tracer, "dynamic.rebuild")
        assert span is not None
        assert span.attributes["policy"] == "manual"
        assert span.attributes["staleness"] == 2

    def test_scrape_format_and_families(self):
        graph = erdos_renyi(30, 120, seed=5)
        metrics = MetricsRegistry()
        dyn = DynamicCSRPlus(graph, rank=4, policy="immediate", metrics=metrics)
        dyn.update_edges(added=[(0, 11)])
        text = metrics.render_prometheus()
        assert assert_known_families(text) >= 2
        assert "csrplus_dynamic_staleness 0" in text
        assert "csrplus_dynamic_rebuilds_total 1" in text


class TestPublishObs:
    def test_swap_updates_version_gauge_and_counters(self):
        graph = erdos_renyi(30, 120, seed=5)
        index = CSRPlusIndex(graph, rank=4).prepare()
        metrics = MetricsRegistry()
        tracer = Tracer()
        with CoSimRankService(
            index, max_workers=1, registry=metrics, tracer=tracer
        ) as service:
            service.serve_batch([[0, 5]])  # two warm entries
            replacement = CSRPlusIndex(graph, rank=4).prepare()
            service.publish_index(replacement)  # identical factors
            text = service.registry.render_prometheus()
        assert "csrplus_index_version 1" in text
        assert "csrplus_update_swap_seconds_count 1" in text
        # identical factors -> no dirty ranges -> both entries retained
        assert "csrplus_serve_cache_retained_total 2" in text
        assert "csrplus_serve_cache_invalidated_total 0" in text
        span = _find_span(tracer, "index.swap")
        assert span is not None
        assert span.attributes["from_version"] == 0
        assert span.attributes["to_version"] == 1
        assert span.attributes["dirty_ranges"] == 0
        assert_known_families(text)

    def test_dirty_swap_counts_invalidations(self):
        graph = erdos_renyi(30, 120, seed=5)
        index = CSRPlusIndex(graph, rank=4).prepare()
        with CoSimRankService(index, max_workers=1) as service:
            service.serve_batch([[0, 15]])
            service.serve_topk([0], 3)
            replacement = CSRPlusIndex(graph, rank=4).prepare()
            # seed 0 sits inside the dirty range (dropped); seed 15
            # survives via the row patcher
            service.publish_index(replacement, dirty_ranges=[(0, 5)])
            text = service.registry.render_prometheus()
        assert "csrplus_serve_cache_invalidated_total 1" in text
        assert "csrplus_serve_cache_patched_total 1" in text
        assert "csrplus_topk_cache_invalidated_total 1" in text
        assert_known_families(text)


class TestChainObs:
    def test_update_counters_accumulate(self, tmp_path):
        graph = erdos_renyi(30, 120, seed=5)
        metrics = MetricsRegistry()
        chain = LiveIndexChain(
            graph, rank=4, num_shards=3, store_root=str(tmp_path),
            metrics=metrics,
        )
        existing = next(iter(graph.edges()))
        chain.update_edges(added=[existing])  # byte-no-op: repairs 0
        chain.update_edges(added=[(0, 15), (15, 0)])  # real churn
        text = metrics.render_prometheus()
        assert "csrplus_update_edges_total 3" in text
        repaired = metrics.counter("csrplus_update_repaired_shards_total", "x")
        assert repaired.value >= 1  # the real batch rewrote shards
        assert_valid_prometheus(text)
        assert_known_families(text)

    def test_full_rebuild_counter(self):
        graph = erdos_renyi(30, 120, seed=5)
        metrics = MetricsRegistry()
        chain = LiveIndexChain(graph, rank=4, metrics=metrics)
        chain.update_edges(added=[(0, 15)])
        # a monolithic chain rebuilds in full by construction
        counter = metrics.counter("csrplus_update_full_rebuilds_total", "x")
        assert counter.value == 1
        assert chain.current.full_rebuild
