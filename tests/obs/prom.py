"""Shared Prometheus line-format validation for the observability tests.

``assert_valid_prometheus`` checks the text exposition line by line;
``assert_known_families`` additionally pins every ``csrplus_*`` family
name against :data:`KNOWN_CSRPLUS_FAMILIES`, so a typo'd or renamed
metric fails a test instead of silently forking a new time series.
New instruments must be registered here (and documented in
docs/observability.md).
"""

import re

# One Prometheus text-format sample line: name, optional labels, value.
PROM_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$'
)
PROM_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*$")

#: Every csrplus_* metric family the package may legitimately emit.
KNOWN_CSRPLUS_FAMILIES = frozenset({
    # engines (repro.core.base, repro.core.memory)
    "csrplus_prepare_seconds",
    "csrplus_query_seconds",
    "csrplus_stage_seconds_total",
    "csrplus_memory_peak_bytes",
    # serving (repro.serving.service)
    "csrplus_serve_requests_total",
    "csrplus_serve_batches_total",
    "csrplus_serve_seeds_requested_total",
    "csrplus_serve_unique_seeds_total",
    "csrplus_serve_cache_hits_total",
    "csrplus_serve_cache_misses_total",
    "csrplus_serve_cache_evictions_total",
    "csrplus_serve_cache_columns",
    "csrplus_serve_cache_bytes",
    "csrplus_serve_cache_capacity",
    "csrplus_serve_cache_integrity_failures",
    "csrplus_serve_shed_total",
    "csrplus_serve_deadline_exceeded_total",
    "csrplus_serve_retries_total",
    "csrplus_serve_degraded_requests_total",
    "csrplus_serve_phase_seconds_total",
    "csrplus_serve_batch_seconds",
    "csrplus_serve_slow_batches_total",
    "csrplus_serve_query_mode",
    # approximate serving tier (repro.serving.approx, docs/approx.md)
    "csrplus_serve_tier_exact_total",
    "csrplus_serve_tier_approx_total",
    "csrplus_approx_batches_total",
    "csrplus_approx_downgrades_total",
    "csrplus_approx_seeds_total",
    "csrplus_approx_index_version",
    "csrplus_approx_atol",
    "csrplus_serve_budget_underflow_total",
    # live-graph serving (repro.serving.service / live, repro.core.dynamic)
    "csrplus_index_version",
    "csrplus_update_swap_seconds",
    "csrplus_update_edges_total",
    "csrplus_update_repaired_shards_total",
    "csrplus_update_full_rebuilds_total",
    "csrplus_serve_cache_invalidated_total",
    "csrplus_serve_cache_patched_total",
    "csrplus_serve_cache_retained_total",
    "csrplus_topk_cache_invalidated_total",
    "csrplus_topk_cache_retained_total",
    "csrplus_dynamic_staleness",
    "csrplus_dynamic_rebuilds_total",
    # top-k serving
    "csrplus_topk_batches_total",
    "csrplus_topk_seeds_total",
    "csrplus_topk_cache_hits_total",
    "csrplus_topk_cache_misses_total",
    "csrplus_topk_cache_evictions_total",
    "csrplus_topk_cache_entries",
    "csrplus_topk_candidates_scored_total",
    "csrplus_topk_blocks_scanned_total",
    "csrplus_topk_blocks_skipped_total",
    "csrplus_topk_retries_total",
    "csrplus_topk_deadline_exceeded_total",
    "csrplus_topk_degraded_requests_total",
    # index registry (repro.core.registry)
    "csrplus_registry_corrupt_total",
    "csrplus_registry_rebuilds_total",
    "csrplus_registry_retries_total",
    "csrplus_registry_shard_repairs_total",
    # sharded backend (repro.sharding)
    "csrplus_shard_count",
    "csrplus_shard_resident",
    "csrplus_shard_loads_total",
    "csrplus_shard_queries_total",
    "csrplus_shard_columns_total",
    "csrplus_shard_tasks_total",
    "csrplus_shard_read_failures_total",
    "csrplus_shard_read_retries_total",
    # SLO verdict gauges (repro.obs.slo)
    "csrplus_slo_target",
    "csrplus_slo_measured",
    "csrplus_slo_error_budget",
    "csrplus_slo_bad_fraction",
    "csrplus_slo_burn_rate",
    "csrplus_slo_ok",
    # load generation (repro.serving.loadgen)
    "csrplus_loadgen_requests_total",
    "csrplus_loadgen_outcomes_total",
    "csrplus_loadgen_shed_total",
    "csrplus_loadgen_deadline_total",
    "csrplus_loadgen_degraded_total",
    "csrplus_loadgen_failed_total",
    "csrplus_loadgen_request_seconds",
    "csrplus_loadgen_mutations_total",
})

#: Suffixes the text format appends to histogram families.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def assert_valid_prometheus(text: str) -> int:
    """Line-format check; returns the number of sample lines."""
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert PROM_COMMENT_RE.match(line), f"bad comment line: {line!r}"
        else:
            assert PROM_SAMPLE_RE.match(line), f"bad sample line: {line!r}"
            samples += 1
    return samples


def _family_of(sample_name: str) -> str:
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def assert_known_families(text: str) -> int:
    """Valid line format *and* every csrplus_* family is registered.

    Returns the number of distinct csrplus families seen.
    """
    assert_valid_prometheus(text)
    seen = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if not name.startswith("csrplus_"):
            continue
        family = _family_of(name)
        # a histogram's family name is the un-suffixed one; plain
        # counters/gauges pass through _family_of unchanged, but a
        # counter that *ends* in _count/_sum would be mis-stripped —
        # accept either resolution before failing
        assert (
            family in KNOWN_CSRPLUS_FAMILIES
            or name in KNOWN_CSRPLUS_FAMILIES
        ), f"unregistered csrplus metric family: {name!r} (add it to tests/obs/prom.py)"
        seen.add(family if family in KNOWN_CSRPLUS_FAMILIES else name)
    return len(seen)
