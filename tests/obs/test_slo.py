"""Unit tests for declarative SLOs, error budgets, and burn rates."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SERVE_SLOS,
    AvailabilitySLO,
    LatencySLO,
    SLOReport,
    evaluate_slos,
)
from tests.obs.prom import assert_known_families


def _latency_registry(values, name="csrplus_serve_batch_seconds"):
    registry = MetricsRegistry()
    # a bucket edge at 0.25 makes the fraction-over-threshold exact for
    # the 0.25s SLO thresholds used below (no interpolation ambiguity)
    hist = registry.histogram(name, buckets=(0.01, 0.1, 0.25, 1.0))
    for value in values:
        hist.observe(value)
    return registry


class TestLatencySLO:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            LatencySLO(name="x", threshold_s=0.0)
        with pytest.raises(InvalidParameterError):
            LatencySLO(name="x", threshold_s=0.1, percentile=100.0)
        with pytest.raises(InvalidParameterError):
            LatencySLO(name="x", threshold_s=0.1, percentile=0.0)

    def test_no_traffic_is_vacuous_pass(self):
        result = LatencySLO(name="p99", threshold_s=0.25).evaluate(
            MetricsRegistry()
        )
        assert result.ok
        assert result.samples == 0
        assert math.isnan(result.measured)
        assert result.burn_rate == 0.0

    def test_pass_and_fail(self):
        fast = _latency_registry([0.005] * 99 + [0.5])
        slow = _latency_registry([0.5] * 100)
        slo = LatencySLO(name="p99", threshold_s=0.25, percentile=99.0)
        assert slo.evaluate(fast).ok
        failed = slo.evaluate(slow)
        assert not failed.ok
        assert failed.bad_fraction == pytest.approx(1.0)
        assert failed.burn_rate == pytest.approx(100.0)  # 100% bad / 1% budget

    def test_error_budget_from_percentile(self):
        result = LatencySLO(
            name="p95", threshold_s=1.0, percentile=95.0
        ).evaluate(_latency_registry([0.005]))
        assert result.error_budget == pytest.approx(0.05)

    def test_merges_children_across_registries(self):
        first = _latency_registry([0.005] * 50)
        second = _latency_registry([0.5] * 50)
        result = LatencySLO(
            name="p50", threshold_s=0.25, percentile=50.0
        ).evaluate(first, second)
        assert result.samples == 100
        assert result.bad_fraction == pytest.approx(0.5, abs=0.01)

    def test_non_histogram_metric_raises(self):
        registry = MetricsRegistry()
        registry.counter("csrplus_serve_batch_seconds_x_total").inc()
        registry.counter("csrplus_serve_batch_seconds").inc()
        with pytest.raises(InvalidParameterError):
            LatencySLO(name="x", threshold_s=0.1).evaluate(registry)


class TestAvailabilitySLO:
    def _registry(self, total, shed=0, deadline=0, degraded=0):
        registry = MetricsRegistry()
        registry.counter("csrplus_serve_requests_total").inc(total)
        registry.counter("csrplus_serve_shed_total").inc(shed)
        registry.counter("csrplus_serve_deadline_exceeded_total").inc(deadline)
        registry.counter("csrplus_serve_degraded_requests_total").inc(degraded)
        return registry

    def test_invalid_target_rejected(self):
        with pytest.raises(InvalidParameterError):
            AvailabilitySLO(name="x", target=1.0)
        with pytest.raises(InvalidParameterError):
            AvailabilitySLO(name="x", target=0.0)

    def test_no_traffic_is_vacuous_pass(self):
        result = AvailabilitySLO(name="avail").evaluate(MetricsRegistry())
        assert result.ok and result.samples == 0

    def test_bad_outcomes_burn_the_budget(self):
        slo = AvailabilitySLO(name="avail", target=0.99)
        ok = slo.evaluate(self._registry(1000, shed=5))
        assert ok.ok
        assert ok.measured == pytest.approx(0.995)
        assert ok.burn_rate == pytest.approx(0.5)
        failed = slo.evaluate(self._registry(1000, shed=10, deadline=10))
        assert not failed.ok
        assert failed.burn_rate == pytest.approx(2.0)

    def test_all_bad_counters_counted(self):
        result = AvailabilitySLO(name="avail", target=0.99).evaluate(
            self._registry(100, shed=1, deadline=1, degraded=1)
        )
        assert result.bad_fraction == pytest.approx(0.03)


class TestSLOReport:
    def _report(self):
        registry = _latency_registry([0.005] * 100)
        registry.counter("csrplus_serve_requests_total").inc(100)
        return evaluate_slos(DEFAULT_SERVE_SLOS, registry)

    def test_evaluate_requires_registry(self):
        with pytest.raises(InvalidParameterError):
            evaluate_slos(DEFAULT_SERVE_SLOS)

    def test_report_aggregates_verdicts(self):
        report = self._report()
        assert report.ok
        assert report.failed == []
        assert len(report.results) == len(DEFAULT_SERVE_SLOS)
        as_dict = report.as_dict()
        assert as_dict["ok"] is True
        assert {entry["name"] for entry in as_dict["slos"]} == {
            "serve-p99", "serve-p50", "serve-availability",
        }

    def test_render_is_a_verdict_table(self):
        text = self._report().render()
        assert "PASS" in text
        assert "serve-p99" in text
        assert "objective" in text
        # one header, one rule, one row per SLO
        assert len(text.splitlines()) == 2 + len(DEFAULT_SERVE_SLOS)

    def test_render_marks_failures(self):
        registry = _latency_registry([0.5] * 100)
        report = evaluate_slos(
            [LatencySLO(name="p99", threshold_s=0.01)], registry
        )
        assert "FAIL" in report.render()

    def test_export_emits_valid_slo_gauges(self):
        report = self._report()
        registry = MetricsRegistry()
        report.export(registry)
        text = registry.render_prometheus()
        assert_known_families(text)
        assert 'csrplus_slo_ok{slo="serve-p99"} 1' in text
        assert 'csrplus_slo_target{slo="serve-availability"} 0.999' in text
        for family in (
            "csrplus_slo_target", "csrplus_slo_measured",
            "csrplus_slo_error_budget", "csrplus_slo_bad_fraction",
            "csrplus_slo_burn_rate", "csrplus_slo_ok",
        ):
            assert family in text

    def test_export_maps_nan_measured_to_zero(self):
        report = evaluate_slos(DEFAULT_SERVE_SLOS, MetricsRegistry())
        registry = MetricsRegistry()
        report.export(registry)  # must not crash formatting nan/inf
        value = registry.gauge(
            "csrplus_slo_measured", labels={"slo": "serve-p99"}
        ).value
        assert value == 0.0

    def test_empty_report_renders(self):
        assert SLOReport().render().count("\n") == 1
