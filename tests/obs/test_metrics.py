"""Unit tests for the metrics registry and its expositions."""

import json
import re
import threading

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registries_as_dict,
    render_prometheus,
)

# One Prometheus text-format sample line: name, optional labels, value.
PROM_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r' (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$'
)
PROM_COMMENT_RE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ?.*$")


def assert_valid_prometheus(text: str) -> int:
    """Line-format check; returns the number of sample lines."""
    samples = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert PROM_COMMENT_RE.match(line), f"bad comment line: {line!r}"
        else:
            assert PROM_SAMPLE_RE.match(line), f"bad sample line: {line!r}"
            samples += 1
    return samples


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(InvalidParameterError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_can_go_negative(self):
        gauge = Gauge()
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)   # le="1" bucket (le is <=)
        hist.observe(1.5)   # le="2"
        hist.observe(99.0)  # +Inf
        buckets = dict(hist.buckets())
        assert buckets[1.0] == 1
        assert buckets[2.0] == 2
        assert buckets[float("inf")] == 3
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.5)

    def test_buckets_are_cumulative(self):
        hist = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        for value in (0.0001, 0.0001, 0.3, 100.0):
            hist.observe(value)
        counts = [count for _, count in hist.buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_invalid_buckets_rejected(self):
        with pytest.raises(InvalidParameterError):
            Histogram(buckets=())
        with pytest.raises(InvalidParameterError):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help text")
        b = registry.counter("x_total")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_label_sets_are_distinct_children(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "a"})
        b = registry.counter("x_total", labels={"k": "b"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", labels={"a": "1", "b": "2"})
        b = registry.gauge("g", labels={"b": "2", "a": "1"})
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(InvalidParameterError):
            registry.gauge("x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError):
            registry.counter("0bad")
        with pytest.raises(InvalidParameterError):
            registry.counter("has space")
        with pytest.raises(InvalidParameterError):
            registry.counter("ok_total", labels={"0bad": "v"})

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        hist = registry.histogram("h_seconds")
        counter.inc(7)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0.0
        assert hist.count == 0
        # the reference handed out earlier is still the live instrument
        counter.inc()
        assert registry.counter("x_total").value == 1.0


class TestPrometheusExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests", labels={"kind": "a"}).inc(3)
        registry.counter("req_total", labels={"kind": "b"}).inc()
        registry.gauge("occupancy", "Resident items").set(12)
        registry.histogram("lat_seconds", "Latency").observe(0.02)
        return registry

    def test_every_line_is_valid(self):
        text = self._populated().render_prometheus()
        assert assert_valid_prometheus(text) > 0

    def test_help_type_and_samples_present(self):
        text = self._populated().render_prometheus()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="a"} 3' in text
        assert 'req_total{kind="b"} 1' in text
        assert "# TYPE occupancy gauge" in text
        assert "occupancy 12" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"path": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_merge_disjoint_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total").inc()
        second.counter("b_total").inc()
        text = render_prometheus(first, second)
        assert "a_total 1" in text and "b_total 1" in text

    def test_merge_conflicting_names_raises(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total")
        second.counter("a_total")
        with pytest.raises(InvalidParameterError):
            render_prometheus(first, second)

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        self._populated().write_prometheus(path)
        assert_valid_prometheus(path.read_text())


class TestJsonExposition:
    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X", labels={"k": "v"}).inc(2)
        registry.histogram("h_seconds").observe(0.003)
        dump = json.loads(json.dumps(registry.as_dict()))
        by_name = {family["name"]: family for family in dump["metrics"]}
        assert by_name["x_total"]["type"] == "counter"
        assert by_name["x_total"]["samples"][0] == {
            "labels": {"k": "v"}, "value": 2.0,
        }
        hist = by_name["h_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"]["+Inf"] == 1

    def test_merged_dump(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total").inc()
        second.gauge("b").set(2)
        dump = registries_as_dict(first, second)
        assert {f["name"] for f in dump["metrics"]} == {"a_total", "b"}

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text())["metrics"][0]["name"] == "x_total"
