"""Unit tests for the metrics registry and its expositions."""

import json
import math
import threading

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_PREPARE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registries_as_dict,
    render_prometheus,
)

# Shared with every other obs test; re-exported here for backward
# compatibility with older imports of this module.
from tests.obs.prom import (  # noqa: F401
    PROM_COMMENT_RE,
    PROM_SAMPLE_RE,
    assert_valid_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(InvalidParameterError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_can_go_negative(self):
        gauge = Gauge()
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)   # le="1" bucket (le is <=)
        hist.observe(1.5)   # le="2"
        hist.observe(99.0)  # +Inf
        buckets = dict(hist.buckets())
        assert buckets[1.0] == 1
        assert buckets[2.0] == 2
        assert buckets[float("inf")] == 3
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.5)

    def test_buckets_are_cumulative(self):
        hist = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        for value in (0.0001, 0.0001, 0.3, 100.0):
            hist.observe(value)
        counts = [count for _, count in hist.buckets()]
        assert counts == sorted(counts)
        assert counts[-1] == 4

    def test_invalid_buckets_rejected(self):
        with pytest.raises(InvalidParameterError):
            Histogram(buckets=())
        with pytest.raises(InvalidParameterError):
            Histogram(buckets=(2.0, 1.0))


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0, 2.0)).quantile(0.5))

    def test_out_of_range_q_rejected(self):
        hist = Histogram(buckets=(1.0,))
        with pytest.raises(InvalidParameterError):
            hist.quantile(-0.1)
        with pytest.raises(InvalidParameterError):
            hist.quantile(1.5)

    def test_linear_interpolation_within_bucket(self):
        # 4 observations all in the (1, 2] bucket: the median
        # interpolates to the middle of that bucket, Prometheus-style.
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (1.2, 1.4, 1.6, 1.8):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_q0_resolves_to_first_nonempty_bucket_lower_bound(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(3.0)
        assert hist.quantile(0.0) == pytest.approx(2.0)

    def test_inf_bucket_clamps_to_highest_finite_bound(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_quantile_monotone_in_q(self):
        rng = np.random.default_rng(3)
        hist = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        for value in rng.exponential(0.1, size=500):
            hist.observe(float(value))
        qs = [hist.quantile(q) for q in np.linspace(0.0, 1.0, 21)]
        assert qs == sorted(qs)

    def test_error_bounded_by_bucket_width(self):
        # the core accuracy contract, also enforced at bench scale in
        # benchmarks/test_quantile_accuracy.py
        rng = np.random.default_rng(7)
        values = rng.gamma(2.0, 0.05, size=2000)
        hist = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        for value in values:
            hist.observe(float(value))
        bounds = (0.0,) + tuple(DEFAULT_LATENCY_BUCKETS)
        for percentile in (50.0, 90.0, 95.0, 99.0):
            exact = float(np.percentile(values, percentile))
            estimate = hist.quantile(percentile / 100.0)
            widths = [
                upper - lower
                for lower, upper in zip(bounds, bounds[1:])
                if lower <= exact <= upper
            ]
            assert widths, f"exact p{percentile} outside finite buckets"
            assert abs(estimate - exact) <= max(widths)


class TestCustomBuckets:
    def test_registry_histogram_accepts_custom_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.5, 5.0, 50.0))
        assert hist.bucket_bounds == (0.5, 5.0, 50.0)
        # same name resolves to the same child regardless of buckets
        assert registry.histogram("h_seconds") is hist

    def test_prepare_buckets_cover_minutes(self):
        # satellite: prepare-phase histograms must not park bench-scale
        # observations (minutes) in +Inf
        assert max(DEFAULT_LATENCY_BUCKETS) <= 10.0
        assert max(DEFAULT_PREPARE_BUCKETS) >= 600.0
        assert list(DEFAULT_PREPARE_BUCKETS) == sorted(DEFAULT_PREPARE_BUCKETS)

    def test_prepare_histogram_uses_wide_buckets(self):
        import repro.obs as obs
        from repro.core.index import CSRPlusIndex
        from repro.graphs import ring

        previous = obs.set_enabled(True)
        try:
            obs.get_registry().reset()
            CSRPlusIndex(ring(12), rank=4).prepare()
            hist = obs.get_registry().histogram(
                "csrplus_prepare_seconds", labels={"engine": "CSR+"}
            )
            assert hist.bucket_bounds == DEFAULT_PREPARE_BUCKETS
        finally:
            obs.set_enabled(previous)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help text")
        b = registry.counter("x_total")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_label_sets_are_distinct_children(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "a"})
        b = registry.counter("x_total", labels={"k": "b"})
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("g", labels={"a": "1", "b": "2"})
        b = registry.gauge("g", labels={"b": "2", "a": "1"})
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(InvalidParameterError):
            registry.gauge("x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError):
            registry.counter("0bad")
        with pytest.raises(InvalidParameterError):
            registry.counter("has space")
        with pytest.raises(InvalidParameterError):
            registry.counter("ok_total", labels={"0bad": "v"})

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        hist = registry.histogram("h_seconds")
        counter.inc(7)
        hist.observe(0.5)
        registry.reset()
        assert counter.value == 0.0
        assert hist.count == 0
        # the reference handed out earlier is still the live instrument
        counter.inc()
        assert registry.counter("x_total").value == 1.0


class TestPrometheusExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests", labels={"kind": "a"}).inc(3)
        registry.counter("req_total", labels={"kind": "b"}).inc()
        registry.gauge("occupancy", "Resident items").set(12)
        registry.histogram("lat_seconds", "Latency").observe(0.02)
        return registry

    def test_every_line_is_valid(self):
        text = self._populated().render_prometheus()
        assert assert_valid_prometheus(text) > 0

    def test_help_type_and_samples_present(self):
        text = self._populated().render_prometheus()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="a"} 3' in text
        assert 'req_total{kind="b"} 1' in text
        assert "# TYPE occupancy gauge" in text
        assert "occupancy 12" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"path": 'a"b\\c'}).inc()
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_merge_disjoint_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total").inc()
        second.counter("b_total").inc()
        text = render_prometheus(first, second)
        assert "a_total 1" in text and "b_total 1" in text

    def test_merge_conflicting_names_raises(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total")
        second.counter("a_total")
        with pytest.raises(InvalidParameterError):
            render_prometheus(first, second)

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        self._populated().write_prometheus(path)
        assert_valid_prometheus(path.read_text())


class TestJsonExposition:
    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X", labels={"k": "v"}).inc(2)
        registry.histogram("h_seconds").observe(0.003)
        dump = json.loads(json.dumps(registry.as_dict()))
        by_name = {family["name"]: family for family in dump["metrics"]}
        assert by_name["x_total"]["type"] == "counter"
        assert by_name["x_total"]["samples"][0] == {
            "labels": {"k": "v"}, "value": 2.0,
        }
        hist = by_name["h_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"]["+Inf"] == 1

    def test_merged_dump(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("a_total").inc()
        second.gauge("b").set(2)
        dump = registries_as_dict(first, second)
        assert {f["name"] for f in dump["metrics"]} == {"a_total", "b"}

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        assert json.loads(path.read_text())["metrics"][0]["name"] == "x_total"
