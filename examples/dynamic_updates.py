"""Evolving graphs: incremental CoSimRank with the F-CoSim engine.

Demonstrates the dynamic extension (paper reference [14]): cached
single-source results survive edge updates that provably cannot affect
them, and only genuinely affected queries are recomputed.  Locality is
easiest to see on a graph with two independent communities: an edge
landing in one community leaves the other community's cached queries
warm.

Run with:  python examples/dynamic_updates.py
"""

import numpy as np

from repro.baselines import FCoSimEngine
from repro.graphs import DiGraph, chung_lu


def two_communities(size: int, edges_each: int, seed: int) -> DiGraph:
    """Two disjoint Chung–Lu communities: ids [0, size) and [size, 2*size)."""
    left = chung_lu(size, edges_each, seed=seed)
    right = chung_lu(size, edges_each, seed=seed + 1)
    sources = np.concatenate([left.edge_sources, right.edge_sources + size])
    targets = np.concatenate([left.edge_targets, right.edge_targets + size])
    return DiGraph.from_arrays(2 * size, sources, targets)


def main() -> None:
    size = 400
    graph = two_communities(size, 1_200, seed=13)
    engine = FCoSimEngine(graph, damping=0.6, epsilon=1e-4)
    engine.prepare()

    left_queries = [5, 100]
    right_queries = [size + 7, size + 350]
    engine.query(left_queries + right_queries)
    print(f"cached columns after first query: {engine.cache_size}")

    # An edge arriving inside the LEFT community...
    new_edge = (3, 42)
    invalidated = engine.update_edges(added=[new_edge])
    print(
        f"added edge {new_edge} in the left community: invalidated "
        f"{invalidated} cached queries; {engine.cache_size} stay warm"
    )

    # ...and the engine still answers everything correctly.
    block = engine.query(left_queries + right_queries)
    fresh = FCoSimEngine(engine.graph, damping=0.6, epsilon=1e-4).query(
        left_queries + right_queries
    )
    drift = abs(block - fresh).max()
    print(f"post-update results match a fresh engine to {drift:.2e}")

    removed = engine.update_edges(removed=[new_edge])
    print(f"removing it again invalidated {removed} cached queries")


if __name__ == "__main__":
    main()
