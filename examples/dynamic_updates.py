"""Live-graph serving: zero-downtime version swaps under real traffic.

Earlier revisions of this example poked the dynamic engine directly;
it is now a served scenario (docs/dynamic.md): a
:class:`~repro.serving.LiveIndexChain` absorbs edge batches *while* a
:class:`~repro.serving.CoSimRankService` answers a deterministic
loadgen schedule — the same mutation harness behind
``csrplus loadgen --mutate-every``.  Every applied batch repairs the
index, publishes a new version atomically (in-flight batches finish on
the old one), and upgrades the per-seed caches instead of flushing
them.  A real edge batch perturbs the global SVD factors, so its swap
honestly invalidates; a batch that coalesces to a byte-no-op (re-adding
an edge that already exists) publishes a new version whose cached
columns replay their exact pre-swap bytes — the cache stays warm across
the version bump.

Run with:  python examples/dynamic_updates.py
"""

import numpy as np

from repro.core.index import CSRPlusIndex
from repro.graphs import DiGraph, chung_lu
from repro.serving import (
    CoSimRankService,
    LiveIndexChain,
    LoadProfile,
    SimulatedClock,
    build_schedule,
    run_load,
)


def two_communities(size: int, edges_each: int, seed: int) -> DiGraph:
    """Two disjoint Chung–Lu communities: ids [0, size) and [size, 2*size)."""
    left = chung_lu(size, edges_each, seed=seed)
    right = chung_lu(size, edges_each, seed=seed + 1)
    sources = np.concatenate([left.edge_sources, right.edge_sources + size])
    targets = np.concatenate([left.edge_targets, right.edge_targets + size])
    return DiGraph.from_arrays(2 * size, sources, targets)


def main() -> None:
    size = 200
    graph = two_communities(size, 600, seed=13)
    chain = LiveIndexChain(graph, rank=8)

    profile = LoadProfile(
        requests=120, qps=400.0, seeds_per_request=3, zipf_s=1.1, seed=7
    )
    schedule = build_schedule(profile, num_nodes=graph.num_nodes)
    clock = SimulatedClock()
    rng = np.random.default_rng(7)

    with CoSimRankService(chain.index, max_workers=2) as service:
        chain.attach(service)

        def mutate(_index: int) -> None:
            # every edge batch lands inside the LEFT community
            src = int(rng.integers(size))
            dst = int((src + 1 + rng.integers(size - 1)) % size)
            chain.update_edges(added=[(src, dst)])

        report = run_load(
            service,
            schedule,
            mutator=mutate,
            mutate_every=30,
            clock=clock.now,
            sleep=clock.sleep,
        )
        print(report.render())
        print(
            f"live: {service.index_version} version swaps completed with "
            "zero downtime"
        )

        # A batch that coalesces to a byte-no-op still publishes a new
        # version — and the caches stay warm across that swap.
        right_seed = size + 7
        warm = service.serve_batch([[right_seed]])[0]
        hits_before = service.stats().hits
        chain.update_edges(added=[next(iter(chain.graph.edges()))])
        replay = service.serve_batch([[right_seed]])[0]
        hit = service.stats().hits - hits_before > 0
        print(
            f"byte-no-op batch published v{service.index_version}; "
            f"seed {right_seed} stayed warm and replayed exact bytes: "
            f"{bool(hit and np.array_equal(replay, warm))}"
        )

    # the served answers after all those swaps match a fresh build
    scratch = CSRPlusIndex(chain.graph, rank=8).prepare()
    drift = np.abs(
        chain.index.query([5, right_seed]) - scratch.query([5, right_seed])
    ).max()
    print(f"post-update results match a fresh index to {drift:.2e}")


if __name__ == "__main__":
    main()
