"""Scalability shoot-out: CSR+ vs the baselines as graphs grow.

A miniature of the paper's Figures 2/6: runs every competitor on
progressively larger power-law graphs under a fixed memory budget and
prints who survives, how fast, and at what memory cost.  Watch CSR-NI
die first (tensor products), then CSR-IT (quadratic fill-in), while
CSR+ stays linear.

Run with:  python examples/scalability_comparison.py
"""

from repro.baselines import COMPARISON_ENGINES
from repro.datasets import sample_queries
from repro.experiments import format_bytes, format_seconds, measure
from repro.graphs import chung_lu

SIZES = [(1_000, 5_300), (5_000, 26_500), (20_000, 106_000), (60_000, 318_000)]
MEMORY_BUDGET = 400_000_000  # 400 MB of accounted arrays
TIME_BUDGET = 30.0           # seconds per phase


def main() -> None:
    print(f"{'n':>8} {'m':>9}  " + "".join(f"{name:>24}" for name in COMPARISON_ENGINES))
    for num_nodes, num_edges in SIZES:
        graph = chung_lu(num_nodes, num_edges, seed=21)
        queries = sample_queries(graph, 100, seed=7)
        cells = []
        for name in COMPARISON_ENGINES:
            record = measure(
                name,
                graph,
                queries,
                rank=5,
                memory_budget_bytes=MEMORY_BUDGET,
                time_budget_seconds=TIME_BUDGET,
            )
            if record.status == "memory":
                cells.append("OOM")
            elif record.status == "timeout":
                cells.append("DNF")
            else:
                cells.append(
                    f"{format_seconds(record.total_seconds)}"
                    f" / {format_bytes(record.peak_bytes)}"
                )
        print(
            f"{graph.num_nodes:>8} {graph.num_edges:>9}  "
            + "".join(f"{cell:>24}" for cell in cells)
        )
    print(
        f"\n(budget: {format_bytes(MEMORY_BUDGET)} accounted memory, "
        f"{TIME_BUDGET:.0f}s per phase; |Q|=100, r=5, c=0.6)"
    )


if __name__ == "__main__":
    main()
