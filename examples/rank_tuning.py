"""Choosing the SVD rank: accuracy vs cost.

The paper fixes r = 5 and shows (Table 3) that accuracy improves mildly
with r.  This demo turns that into a workflow: inspect the singular-
value decay, estimate the AvgDiff of candidate ranks without an exact
solver, and let `suggest_rank` pick the cheapest rank meeting a target.

Run with:  python examples/rank_tuning.py
"""

from repro.core import CSRPlusIndex
from repro.core.tuning import (
    estimate_rank_error,
    singular_value_profile,
    suggest_rank,
)
from repro.graphs import chung_lu


def main() -> None:
    graph = chung_lu(3_000, 16_000, seed=33)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    sigma = singular_value_profile(graph, 30)
    print("\nsingular-value decay of Q (energy concentrates fast):")
    for rank in (1, 5, 10, 20, 30):
        captured = (sigma[:rank] ** 2).sum() / (sigma**2).sum()
        print(f"  top-{rank:<3} captures {100 * captured:5.1f}% "
              f"of the top-30 spectral energy")

    print("\nestimated AvgDiff per candidate rank (vs a 4x-finer reference):")
    for rank in (5, 10, 25, 50):
        error = estimate_rank_error(graph, rank, num_sample_queries=30)
        print(f"  r = {rank:<3} -> {error:.2e}")

    target = 1e-4
    best = suggest_rank(graph, target, candidates=(5, 10, 25, 50, 100))
    print(f"\nsuggest_rank(target AvgDiff {target:.0e}) -> r = {best}")

    index = CSRPlusIndex(graph, rank=best).prepare()
    print(
        f"index at r = {best}: prepared in {index.prepare_seconds:.3f}s, "
        f"{index.memory.peak_bytes / 1e6:.1f} MB of factors"
    )


if __name__ == "__main__":
    main()
