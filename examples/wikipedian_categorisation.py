"""Wikipedians categorisation — the paper's motivating application (§1).

Reproduces Figure 1's scenario on the actual 6-node Wiki-Talk fragment
from the paper, then scales the same workflow up to a synthetic
Wiki-Talk stand-in with planted communities.

Run with:  python examples/wikipedian_categorisation.py
"""

import numpy as np

from repro.applications import categorise
from repro.datasets import FIGURE1_LABELS, FIGURE1_NODES, figure1_graph, figure1_node_ids
from repro.graphs import DiGraph, chung_lu


def figure1_demo() -> None:
    """The literal example: Q = {b, d} labelled 'law', a labelled 'art'."""
    graph = figure1_graph()
    ids = figure1_node_ids()
    seeds = {}
    for name, label in FIGURE1_LABELS.items():
        seeds.setdefault(label, []).append(ids[name])

    result = categorise(graph, seeds, rank=4, damping=0.6)
    print("Figure 1 Wiki-Talk fragment — category scores:")
    print(f"{'user':>6} {'law':>8} {'art':>8}  assigned")
    for node, name in enumerate(FIGURE1_NODES):
        law = result.scores["law"][node]
        art = result.scores["art"][node]
        print(f"{name:>6} {law:8.4f} {art:8.4f}  {result.assignments[node]}")


def planted_communities(num_communities=4, size=150, seed=5) -> None:
    """Scale-up: a graph of dense communities plus random cross links."""
    rng = np.random.default_rng(seed)
    n = num_communities * size
    edges = []
    for community in range(num_communities):
        base = community * size
        # dense random links inside each community
        for _ in range(size * 6):
            s, t = rng.integers(0, size, size=2)
            if s != t:
                edges.append((base + int(s), base + int(t)))
    # sparse global noise
    for _ in range(n):
        s, t = rng.integers(0, n, size=2)
        if s != t:
            edges.append((int(s), int(t)))
    graph = DiGraph(n, edges)

    # two labelled seeds per community
    seeds = {
        f"community-{k}": [k * size, k * size + 1] for k in range(num_communities)
    }
    result = categorise(graph, seeds, rank=16)

    correct = 0
    for node in range(n):
        expected = f"community-{node // size}"
        if result.assignments[node] == expected:
            correct += 1
    print(
        f"\nplanted communities: {num_communities} x {size} nodes, "
        f"{graph.num_edges} edges -> "
        f"{correct}/{n} nodes recovered ({100.0 * correct / n:.1f}%)"
    )


if __name__ == "__main__":
    figure1_demo()
    planted_communities()
