"""Weighted CoSimRank: edge weights shape the similarity.

The paper's graphs are unweighted COO triples ``(x, y, 1)``; this
library also supports positive edge weights, where the transition
matrix becomes weight-proportional: ``Q[x, y] = w(x, y)/in_strength(y)``.
Every engine works unchanged.

The demo builds a citation-style graph twice — once unweighted, once
with weights — and shows how weighting moves the similarity ranking.

Run with:  python examples/weighted_graphs.py
"""

from repro.core import CSRPlusIndex
from repro.graphs import DiGraph, WeightedDiGraph

# Papers 0..2 are "classics"; 3..8 cite them with varying intensity.
CITATIONS = [
    # (citing, cited, times-cited-in-text)
    (3, 0, 8.0), (3, 1, 1.0),
    (4, 0, 7.0), (4, 1, 1.0),
    (5, 0, 1.0), (5, 2, 9.0),
    (6, 0, 1.0), (6, 2, 8.0),
    (7, 1, 5.0), (7, 2, 5.0),
    (8, 1, 5.0), (8, 2, 5.0),
]


def main() -> None:
    # CoSimRank similarity flows through *in*-links: two nodes are
    # similar when similar nodes point at them.  To compare citing
    # papers by WHAT THEY CITE (bibliographic coupling), orient the
    # edges cited -> citing, so each citing paper's in-neighbourhood is
    # its reference list.
    unweighted = DiGraph(9, [(t, s) for s, t, _ in CITATIONS])
    weighted = WeightedDiGraph(9, [(t, s, w) for s, t, w in CITATIONS])

    plain = CSRPlusIndex(unweighted, rank=6, damping=0.8).prepare()
    tuned = CSRPlusIndex(weighted, rank=6, damping=0.8).prepare()

    print("similarity of the citing papers to paper 3 (cites 0 heavily):")
    print(f"{'paper':>6} {'unweighted':>12} {'weighted':>10}")
    for paper in (4, 5, 6, 7, 8):
        a = plain.single_pair(3, paper)
        b = tuned.single_pair(3, paper)
        print(f"{paper:>6} {a:12.4f} {b:10.4f}")

    print(
        "\npaper 4 (same heavy citation of 0) gains similarity to 3 under\n"
        "weights, while 5/6 (heavy on 2 instead) lose it — binary edges\n"
        "cannot see that distinction."
    )
    top_plain = plain.top_k(3, 2).tolist()
    top_tuned = tuned.top_k(3, 2).tolist()
    print(f"\ntop-2 neighbours of paper 3: unweighted={top_plain}, weighted={top_tuned}")


if __name__ == "__main__":
    main()
