"""Link prediction with CoSimRank scores.

Hides 20% of a synthetic social graph's edges, indexes the rest with
CSR+, and checks that the hidden edges out-score random non-edges
(AUC well above 0.5).  Also shows the pair-scoring API directly.

Run with:  python examples/link_prediction_demo.py
"""

from repro.applications import evaluate_link_prediction, score_pairs, split_edges
from repro.core import CSRPlusIndex
from repro.graphs import preferential_attachment


def main() -> None:
    graph = preferential_attachment(num_nodes=1_500, out_degree=6, seed=9)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    report = evaluate_link_prediction(
        graph, holdout_fraction=0.2, rank=32, damping=0.6, seed=3
    )
    print(
        f"AUC = {report.auc:.3f} over {report.num_positives} held-out edges "
        f"vs {report.num_negatives} non-edges"
    )
    print(
        f"mean score: held-out edges {report.mean_positive_score:.4f} "
        f"vs non-edges {report.mean_negative_score:.4f}"
    )

    # Direct pair scoring: group-by-target = one multi-source query.
    training, held_out = split_edges(graph, 0.2, seed=3)
    engine = CSRPlusIndex(training, rank=16).prepare()
    sample = held_out[:5]
    scores = score_pairs(engine, sample)
    print("\nsample held-out edges and their scores on the training graph:")
    for (s, t), score in zip(sample, scores):
        print(f"  {s:>5} -> {t:<5}  {score:.5f}")


if __name__ == "__main__":
    main()
