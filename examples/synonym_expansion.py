"""Synonym expansion on a word co-occurrence graph.

CoSimRank's original use case (Rothe & Schütze, ACL 2014): rank
candidate synonyms of a word by graph-theoretic similarity.  Words are
similar when they point at (and are pointed at by) similar words —
classic distributional semantics, done with link structure only.

Run with:  python examples/synonym_expansion.py
"""

from repro.applications import SynonymExpander

# A small hand-built dependency/co-occurrence graph.  Edges are directed
# "appears-in-context-of" links; synonyms share contexts, not edges.
EDGES = [
    # vehicle cluster: car/auto/automobile share contexts
    ("car", "road"), ("car", "wheel"), ("car", "engine"), ("car", "driver"),
    ("auto", "road"), ("auto", "wheel"), ("auto", "engine"),
    ("automobile", "road"), ("automobile", "engine"), ("automobile", "driver"),
    ("truck", "road"), ("truck", "wheel"), ("truck", "cargo"),
    # road infrastructure context
    ("road", "city"), ("wheel", "engine"),
    # medicine cluster: doctor/physician share contexts
    ("doctor", "hospital"), ("doctor", "patient"), ("doctor", "medicine"),
    ("physician", "hospital"), ("physician", "patient"), ("physician", "medicine"),
    ("nurse", "hospital"), ("nurse", "patient"),
    ("medicine", "patient"),
    # bridge word with two senses
    ("operator", "engine"), ("operator", "hospital"),
]


def main() -> None:
    expander = SynonymExpander(EDGES, rank=8, damping=0.8)
    print(f"vocabulary: {len(expander.vocabulary)} words")

    for word in ("car", "doctor", "truck"):
        candidates = expander.expand(word, k=3)
        pretty = ", ".join(f"{w} ({score:.4f})" for w, score in candidates)
        print(f"expand({word!r}):  {pretty}")

    # Multi-source expansion: words similar to the whole seed set at once —
    # one CSR+ query block instead of |seeds| independent searches.
    seeds = ["car", "automobile"]
    print(f"\nexpand_set({seeds}):")
    for word, score in expander.expand_set(seeds, k=4):
        print(f"  {word:<12} {score:.4f}")

    print(f"\nsimilarity(car, auto)      = {expander.similarity('car', 'auto'):.4f}")
    print(f"similarity(car, physician) = {expander.similarity('car', 'physician'):.4f}")


if __name__ == "__main__":
    main()
