"""Quickstart: build a CSR+ index and run multi-source CoSimRank queries.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import CSRPlusIndex, CSRPlusConfig
from repro.graphs import chung_lu


def main() -> None:
    # 1. Get a graph.  Here: a synthetic power-law digraph; in real use,
    #    load one with repro.graphs.read_edge_list("my_edges.txt").
    graph = chung_lu(num_nodes=5_000, num_edges=26_000, seed=42)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Precompute the index once (offline phase of Algorithm 1).
    #    rank trades accuracy for speed; the paper's default is 5.
    config = CSRPlusConfig(damping=0.6, rank=8, epsilon=1e-5)
    index = CSRPlusIndex(graph, config).prepare()
    print(f"prepared in {index.prepare_seconds:.3f}s "
          f"(~{index.memory.peak_bytes / 1e6:.1f} MB of factors)")

    # 3. Multi-source query: similarities of EVERY node to EACH query node,
    #    returned as an n x |Q| block  [S]_{*,Q}.
    queries = [17, 256, 4095]
    block = index.query(queries)
    print(f"queried |Q|={len(queries)} in {index.last_query_seconds * 1e3:.2f} ms; "
          f"result shape {block.shape}")

    # 4. Use the scores: top-5 most similar nodes per query.
    for col, q in enumerate(queries):
        top = np.argsort(block[:, col])[::-1][:5]
        pretty = ", ".join(f"{int(v)}:{block[int(v), col]:.4f}" for v in top)
        print(f"  query {q}: {pretty}")

    # 5. Convenience entry points.
    print(f"single pair S[17, 256]   = {index.single_pair(17, 256):.6f}")
    print(f"top-3 neighbours of 17   = {index.top_k(17, 3).tolist()}")


if __name__ == "__main__":
    main()
