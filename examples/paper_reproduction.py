"""One-command reproduction of the paper's evaluation section.

Runs every registered experiment (Figures 2-9, Tables 1 & 3, plus the
§3.2 stage ablation) and writes the rendered tables to a report file.
Equivalent to `csrplus experiments run all --output report.txt`, with a
size knob for quick passes.

Run with:
    python examples/paper_reproduction.py              # full bench tier
    python examples/paper_reproduction.py --tier tiny  # quick pass
"""

import argparse
import sys
import time

from repro.experiments import list_experiments, run_experiment

TIER_AWARE = {"fig2", "fig3", "fig6", "fig7", "ablation-stages"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tier", choices=("tiny", "small", "bench"), default="bench"
    )
    parser.add_argument("--output", default="reproduction_report.txt")
    parser.add_argument(
        "--only", default=None,
        help="comma-separated experiment ids (default: all)",
    )
    args = parser.parse_args(argv)

    wanted = (
        [tok for tok in args.only.split(",") if tok.strip()]
        if args.only
        else list_experiments()
    )

    sections = []
    for exp_id in wanted:
        kwargs = {"tier": args.tier} if exp_id in TIER_AWARE else {}
        print(f"running {exp_id} ...", flush=True)
        start = time.perf_counter()
        result = run_experiment(exp_id, **kwargs)
        elapsed = time.perf_counter() - start
        print(f"  done in {elapsed:.1f}s")
        sections.append(result.render())

    report = "\n\n".join(sections) + "\n"
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(report)
    print(f"\nwrote {len(wanted)} reproduced artefacts to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
