"""Item-to-item recommendations from interaction logs.

Builds a bipartite user->item graph from synthetic interaction data
with planted taste clusters and shows that CoSimRank recovers them:
similar-item queries stay inside a cluster, and per-user
recommendations surface unseen items from the user's own cluster.

Run with:  python examples/recommendations.py
"""

import numpy as np

from repro.applications import Recommender


def synthetic_interactions(num_users=300, items_per_cluster=20, clusters=4, seed=19):
    """Users belong to a taste cluster; 90% of interactions stay inside it."""
    rng = np.random.default_rng(seed)
    items = [
        f"c{c}-item{i}" for c in range(clusters) for i in range(items_per_cluster)
    ]
    records = []
    for user in range(num_users):
        cluster = user % clusters
        for _ in range(8):
            if rng.random() < 0.9:
                idx = cluster * items_per_cluster + int(
                    rng.integers(items_per_cluster)
                )
            else:
                idx = int(rng.integers(len(items)))
            records.append((f"user{user}", items[idx]))
    return records


def main() -> None:
    records = synthetic_interactions()
    recommender = Recommender(records, rank=16, damping=0.8)
    print(
        f"{recommender.num_users} users x {recommender.num_items} items, "
        f"{len(records)} interactions"
    )

    probe = "c1-item3"
    print(f"\nitems similar to {probe}:")
    hits = 0
    for item, score in recommender.similar_items(probe, k=5):
        marker = "*" if item.startswith("c1-") else " "
        hits += item.startswith("c1-")
        print(f"  {marker} {item:<12} {score:.4f}")
    print(f"  ({hits}/5 from the same taste cluster)")

    user = "user5"  # cluster 1
    print(f"\nrecommendations for {user} (cluster 1, unseen items only):")
    recs = recommender.recommend_for_user(user, k=5)
    in_cluster = sum(1 for item, _ in recs if item.startswith("c1-"))
    for item, score in recs:
        print(f"    {item:<12} {score:.4f}")
    print(f"  ({in_cluster}/5 from the user's own cluster)")


if __name__ == "__main__":
    main()
